// Package pimtree is a Go implementation of the Partitioned In-memory
// Merge-Tree (PIM-Tree) and the parallel index-based sliding-window join
// built on it, reproducing "Parallel Index-based Stream Join on a Multicore
// CPU" (Shahvarani & Jacobsen, SIGMOD 2020).
//
// # The Engine API
//
// The primary entry point is Open: it validates one Config and returns a
// long-lived streaming *Engine over the selected execution Mode —
// single-threaded serial (ModeSerial), the paper's parallel shared-index
// join (ModeShared), the key-range sharded runtime (ModeSharded), or the
// sharded time-window runtime with out-of-order admission (ModeShardedTime).
// ModeAuto picks a mode from the rest of the configuration.
//
// An Engine is a session, not a batch call: Push/PushTimed/PushBatch feed
// tuples as they arrive, forever. Matches stream out on two sides — the
// push side (Config.OnMatch, invoked in arrival order during ordered
// propagation) and the pull side (Engine.Matches, a range-over-func
// iterator). Stats returns live snapshots mid-stream; Drain flushes pending
// shard batches, reorder buffers, and in-flight rebalance epochs to a
// deterministic quiescent point; Close tears the session down and returns
// the final statistics. Both Drain and Close take a context.Context, so a
// stuck or slow shutdown is cancellable. The parallel modes bound their
// in-flight tuples by Config.QueueCapacity and block Push when the ordered
// propagation frontier falls that far behind — backpressure, not unbounded
// queueing.
//
// Every mode produces the identical match multiset as the serial join on
// the same input, regardless of push granularity, thread count, shard
// count, or scheduling — the engine-conformance test suite pins this.
//
// # Compatibility wrappers and other levels
//
// The historical batch drivers are thin wrappers over Engine and remain the
// convenient form for one-shot runs:
//
//   - Join (NewJoin): the incremental single-threaded band join. Push
//     tuples, receive matches synchronously in arrival order. Backends
//     cover every index the paper evaluates (PIM-Tree, IM-Tree, B+-Tree,
//     Bw-Tree, chained index).
//
//   - RunParallel: the paper's multi-threaded shared-index join — a task
//     queue feeding any number of workers, order-preserving result
//     propagation, and non-blocking index merges (PIM-Tree or Bw-Tree;
//     anything else fails with ErrUnsupportedBackend).
//
//   - RunSharded: the key-range sharded parallel join. The key domain is
//     split into K contiguous ranges, each owned by an independent
//     single-writer join instance fed through batched per-shard queues; a
//     band probe fans out to every shard whose range intersects
//     [key-Diff, key+Diff], and an order-preserving merge stage
//     re-sequences matches into global arrival order. The Partitioner hook
//     (RangePartition, QuantilePartition, or a custom implementation)
//     controls the shard boundaries; with Adaptive the runtime rebalances
//     itself online by migrating live window contents between shards.
//
//   - Index: the PIM-Tree as a standalone concurrent sliding-window index —
//     a two-stage structure whose immutable component serves lock-free
//     lookups while inserts go to range-partitioned B+-Trees, with periodic
//     delta merges replacing per-tuple deletes.
//
// The time-based variants — TimeJoin (serial), RunParallelTime (shared
// index), and RunShardedTime (sharded, a wrapper over ModeShardedTime) —
// realize the paper's Section 2.1 time-window extension and add
// out-of-order event-time ingestion: setting a LatePolicy (plus a Slack)
// admits disordered arrivals through a watermark-driven reorder buffer,
// joining any input whose disorder stays within Slack exactly like its
// timestamp-sorted equivalent. Tuples later than the slack are dropped
// (LateDrop), admitted clamped to the watermark (LateEmit), or handed to an
// OnLate side channel (LateCall); RunStats.LateDropped and
// RunStats.MaxObservedDisorder report what the stream actually did.
//
// Workload helpers (UniformSource, GaussianSource, GammaSource,
// DriftingGaussianSource, StepSkewSource, DriftingHotspotSource,
// Interleave) regenerate the paper's synthetic streams plus the moving
// hot-band workloads the adaptive runtime targets; DiffForMatchRate and
// CalibrateDiff pick band widths that hit a target match rate, and
// TimestampArrivals/ShuffleWithinSlack turn any of them into sorted or
// bounded-disorder event-time workloads.
//
// # Serving over the network
//
// The engine also runs as a network service: internal/server wraps a
// long-lived Engine behind a length-prefixed binary TCP protocol (batched
// ingest, match egress to subscribers with bounded per-consumer queues, and
// drain round-trips) plus an HTTP admin endpoint exposing /stats, /metrics
// (Prometheus text format), and /healthz, surfaced on the command line as
// `pimjoin serve` with graceful SIGTERM drain. Engine.ShardLoads and the
// live RunStats fields (Rebalances, MigratedTuples, Imbalance) make the
// adaptive sharded layer observable mid-stream, both from Stats and from
// the admin endpoint. The wire-protocol specification, shutdown semantics,
// and the metric reference live in docs/OPERATIONS.md; docs/TUNING.md maps
// workload shape to Mode/Backend/Shards/QueueCapacity/Slack choices.
//
// The repository also contains the full evaluation harness: cmd/pimbench
// regenerates every figure of the paper's evaluation section plus the
// repository's own ablations, including the engine-overhead,
// sharded-vs-shared, and serving-layer wire-overhead comparisons (see
// docs/ARCHITECTURE.md for the paper-to-package map), cmd/pimjoin runs
// ad-hoc joins — batch, stdin-streamed, or network-served through a live
// Engine — from the command line, and cmd/pimload load-tests a served
// engine with an open-loop, coordinated-omission-safe arrival schedule,
// measuring end-to-end match latency and searching for the maximum
// sustainable rate under a latency SLO (see docs/OPERATIONS.md).
package pimtree
