module pimtree

go 1.24
