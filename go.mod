module pimtree

go 1.23
