package pimtree

import (
	"pimtree/internal/btree"
	"pimtree/internal/core"
	"pimtree/internal/join"
	"pimtree/internal/kv"
	"pimtree/internal/ooo"
	"pimtree/internal/window"
)

// TimeJoinOptions configures an incremental time-based band join — the
// paper's Section 2.1 notes the approach carries to time-based windows; this
// is that extension. Tuples carry logical timestamps (any uint64 unit:
// nanoseconds, milliseconds, event time...); a tuple stays in its window
// while now - ts < Span.
//
// With the zero-value LatePolicy (LateNone) timestamps must be
// non-decreasing across Push calls. Setting any other LatePolicy enables
// buffered out-of-order ingestion: arrivals are held in a reorder buffer and
// joined in timestamp order once the watermark (largest observed timestamp
// minus Slack) passes them, so any input whose disorder stays within Slack
// joins exactly as its timestamp-sorted equivalent. Call Flush at
// end-of-stream to drain the buffer.
type TimeJoinOptions struct {
	Span    uint64 // window duration in timestamp units (required)
	Self    bool   // self-join: one stream, one window
	Diff    uint32 // band half-width
	OnMatch func(Match)

	// Slack bounds the event-time disorder tolerated by the reorder buffer
	// (in timestamp units). Meaningful only with a LatePolicy other than
	// LateNone.
	Slack uint64
	// LatePolicy selects the fate of tuples later than Slack and, when not
	// LateNone, switches Push into buffered out-of-order mode.
	LatePolicy LatePolicy
	// OnLate observes tuples later than Slack (required for LateCall,
	// optional diagnostics for LateDrop/LateEmit).
	OnLate func(t TimedArrival, lateness uint64)
}

// TimeJoin is an incremental time-window band join. Not safe for concurrent
// use.
type TimeJoin struct {
	opts    TimeJoinOptions
	rings   [2]*window.TimeRing
	idxs    [2]*btree.Tree
	caps    [2]int
	reorder *ooo.Reorderer // nil in strict (LateNone) mode
	matches uint64
	tuples  uint64
}

// NewTimeJoin builds an incremental time-based join operator.
func NewTimeJoin(o TimeJoinOptions) (*TimeJoin, error) {
	if err := validateTimeWindow(o.Span, 0, false); err != nil {
		return nil, err
	}
	if err := validateLate(o.LatePolicy, o.Slack, o.OnLate); err != nil {
		return nil, err
	}
	j := &TimeJoin{opts: o}
	j.rings[0] = window.NewTimeRing(o.Span, 1024)
	j.idxs[0] = btree.New()
	if o.Self {
		j.rings[1] = j.rings[0]
		j.idxs[1] = j.idxs[0]
	} else {
		j.rings[1] = window.NewTimeRing(o.Span, 1024)
		j.idxs[1] = btree.New()
	}
	j.caps[0] = j.rings[0].Capacity()
	j.caps[1] = j.rings[1].Capacity()
	if o.LatePolicy != LateNone {
		j.reorder = ooo.New(o.Slack, o.LatePolicy.oooPolicy(), oooLateAdapter(o.OnLate))
	}
	return j, nil
}

// Push processes one tuple with timestamp ts and returns the number of
// matches produced by this call.
//
// In strict mode (LateNone) ts must be non-decreasing per stream (the
// opposite stream's clock is advanced too, so expiry is symmetric) and the
// tuple joins immediately. In buffered mode the tuple enters the reorder
// buffer; the call joins — in timestamp order — every buffered tuple the
// advancing watermark releases, so the returned matches may belong to
// earlier arrivals and a tuple's own matches may surface in later calls (or
// in Flush).
func (j *TimeJoin) Push(s StreamID, key uint32, ts uint64) int {
	if j.reorder == nil {
		return j.pushOrdered(s, key, ts)
	}
	before := j.matches
	j.reorder.Push(ooo.Tuple{Stream: uint8(s), Key: key, TS: ts}, j.emitOrdered)
	return int(j.matches - before)
}

// Flush drains the reorder buffer, joining every held tuple in timestamp
// order, and returns the number of matches produced. Call it at
// end-of-stream or on a lull; a no-op in strict mode. Flushing advances the
// watermark past everything it released, so tuples pushed afterwards with
// older timestamps are late and follow the LatePolicy.
func (j *TimeJoin) Flush() int {
	if j.reorder == nil {
		return 0
	}
	before := j.matches
	j.reorder.Flush(j.emitOrdered)
	return int(j.matches - before)
}

// emitOrdered adapts the reorder buffer's release callback to the ordered
// join core.
func (j *TimeJoin) emitOrdered(t ooo.Tuple) {
	j.pushOrdered(StreamID(t.Stream), t.Key, t.TS)
}

// pushOrdered is the ordered join core: ts must be >= every prior admitted
// timestamp.
func (j *TimeJoin) pushOrdered(s StreamID, key uint32, ts uint64) int {
	own, opp := j.sid(s), j.oppID(s)
	ownRing, oppRing := j.rings[own], j.rings[opp]
	ownIdx, oppIdx := j.idxs[own], j.idxs[opp]

	// Evict expired tuples of the opposite window before the lookup.
	oppRing.AdvanceTime(ts, func(p kv.Pair) { oppIdx.Delete(p) })

	lo := key - j.opts.Diff
	if lo > key {
		lo = 0
	}
	hi := key + j.opts.Diff
	if hi < key {
		hi = ^uint32(0)
	}
	// The probing tuple's per-stream sequence number is the one Append will
	// assign below.
	probeSeq := ownRing.NextSeq()
	matches := 0
	oppIdx.Query(lo, hi, func(p kv.Pair) bool {
		if oppRing.Live(p.Ref) {
			matches++
			if j.opts.OnMatch != nil {
				_, seq := oppRing.Get(p.Ref)
				j.opts.OnMatch(Match{ProbeStream: s, ProbeSeq: probeSeq, MatchSeq: seq})
			}
		}
		return true
	})

	ref, _ := ownRing.Append(key, ts, func(p kv.Pair) { ownIdx.Delete(p) })
	ownIdx.Insert(kv.Pair{Key: key, Ref: ref})
	// Time windows are unbounded in population; ring growth re-homes refs,
	// so the index is rebuilt when it happens.
	if ownRing.NeedsReindex(j.caps[own]) {
		j.caps[own] = ownRing.Capacity()
		ownIdx.Reset()
		mask := uint64(ownRing.Capacity() - 1)
		ownRing.Scan(func(key uint32, seq uint64, _ uint64) bool {
			ownIdx.Insert(kv.Pair{Key: key, Ref: uint32(seq & mask)})
			return true
		})
	}
	j.matches += uint64(matches)
	j.tuples++
	return matches
}

// Matches returns the total number of matches produced so far.
func (j *TimeJoin) Matches() uint64 { return j.matches }

// Tuples returns the number of tuples joined so far (in buffered mode,
// tuples still in the reorder buffer and late-dropped tuples are excluded).
func (j *TimeJoin) Tuples() uint64 { return j.tuples }

// WindowCount returns the live population of a stream's window.
func (j *TimeJoin) WindowCount(s StreamID) int { return j.rings[j.sid(s)].Count() }

// Pending returns the number of tuples held in the reorder buffer (zero in
// strict mode).
func (j *TimeJoin) Pending() int {
	if j.reorder == nil {
		return 0
	}
	return j.reorder.Pending()
}

// Watermark returns the out-of-order admission frontier (largest observed
// timestamp minus Slack; zero in strict mode).
func (j *TimeJoin) Watermark() uint64 {
	if j.reorder == nil {
		return 0
	}
	return j.reorder.Watermark()
}

// LateDropped returns how many tuples arrived later than Slack and were not
// joined (LateDrop discards plus LateCall hand-offs).
func (j *TimeJoin) LateDropped() uint64 {
	if j.reorder == nil {
		return 0
	}
	return j.reorder.LateDropped()
}

// MaxObservedDisorder returns the largest observed lateness across pushed
// tuples (zero in strict mode, where disorder is a contract violation).
func (j *TimeJoin) MaxObservedDisorder() uint64 {
	if j.reorder == nil {
		return 0
	}
	return j.reorder.MaxDisorder()
}

func (j *TimeJoin) sid(s StreamID) int {
	if j.opts.Self {
		return 0
	}
	return int(s)
}

func (j *TimeJoin) oppID(s StreamID) int {
	if j.opts.Self {
		return 0
	}
	return 1 - int(s)
}

// TimedArrival is one tuple with an event timestamp for the batch-parallel
// time join.
type TimedArrival struct {
	Stream StreamID
	Key    uint32
	TS     uint64
}

// ParallelTimeOptions configures the multicore time-window band join — the
// time-based variant of the paper's Section 4 algorithm, where timestamps
// replace the count-window boundary snapshots.
type ParallelTimeOptions struct {
	Threads  int
	TaskSize int
	Span     uint64 // window duration in timestamp units (required)
	MaxLive  int    // upper bound on simultaneously live tuples per window (required)
	Self     bool
	Diff     uint32
	Index    IndexOptions // PIM-Tree tuning (merge ratio defaults to 1)
	OnMatch  func(Match)  // observes matches in admission order

	// Slack, LatePolicy, and OnLate enable out-of-order ingestion: with a
	// policy other than LateNone the arrivals may carry event-time disorder
	// up to Slack — a watermark-driven reorder pass admits them in
	// timestamp order (applying LatePolicy beyond Slack) and the parallel
	// tasks are cut over the admitted sequence. With LateNone the input
	// must be timestamp-ordered.
	Slack      uint64
	LatePolicy LatePolicy
	OnLate     func(t TimedArrival, lateness uint64)
}

// RunParallelTime executes the parallel shared-index time-window join.
// Arrivals must be timestamp-ordered unless a LatePolicy enables
// out-of-order ingestion.
func RunParallelTime(arrivals []TimedArrival, o ParallelTimeOptions) (RunStats, error) {
	if err := validateTimeWindow(o.Span, o.MaxLive, true); err != nil {
		return RunStats{}, err
	}
	if err := validateLate(o.LatePolicy, o.Slack, o.OnLate); err != nil {
		return RunStats{}, err
	}
	var lateDropped, maxDisorder uint64
	if o.LatePolicy != LateNone {
		// Watermark-driven admission: tasks are cut over the reordered
		// sequence, so workers never observe a regressed timestamp.
		arrivals, lateDropped, maxDisorder = reorderTimed(arrivals, o.Slack, o.LatePolicy, o.OnLate)
	} else if !timedSorted(arrivals) {
		return RunStats{}, errNotSorted()
	}
	mergeRatio := o.Index.MergeRatio
	if mergeRatio == 0 {
		mergeRatio = 1
	}
	cfg := join.SharedTimeConfig{
		Threads:  o.Threads,
		TaskSize: o.TaskSize,
		Span:     o.Span,
		MaxLive:  o.MaxLive,
		Self:     o.Self,
		Band:     join.Band{Diff: o.Diff},
		PIM: core.PIMTreeConfig{
			MergeRatio:     mergeRatio,
			InsertionDepth: o.Index.InsertionDepth,
		},
	}
	if o.OnMatch != nil {
		cb := o.OnMatch
		cfg.Sink = func(s uint8, probe, match uint64) {
			cb(Match{ProbeStream: StreamID(s), ProbeSeq: probe, MatchSeq: match})
		}
	}
	in := make([]join.TimedArrival, len(arrivals))
	for i, a := range arrivals {
		in[i] = join.TimedArrival{Stream: uint8(a.Stream), Key: a.Key, TS: a.TS}
	}
	st := join.RunSharedTime(in, cfg)
	return RunStats{
		Tuples:              st.Tuples,
		Matches:             st.Matches,
		Elapsed:             st.Elapsed,
		Mtps:                st.Mtps(),
		Merges:              st.Merges,
		MergeTime:           st.MergeTime,
		LateDropped:         lateDropped,
		MaxObservedDisorder: maxDisorder,
	}, nil
}
