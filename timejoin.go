package pimtree

import (
	"fmt"

	"pimtree/internal/btree"
	"pimtree/internal/core"
	"pimtree/internal/join"
	"pimtree/internal/kv"
	"pimtree/internal/window"
)

// TimeJoinOptions configures an incremental time-based band join — the
// paper's Section 2.1 notes the approach carries to time-based windows; this
// is that extension. Tuples carry logical timestamps (any non-decreasing
// uint64: nanoseconds, milliseconds, event time...); a tuple stays in its
// window while now - ts < Span.
type TimeJoinOptions struct {
	Span    uint64 // window duration in timestamp units (required)
	Self    bool   // self-join: one stream, one window
	Diff    uint32 // band half-width
	OnMatch func(Match)
}

// TimeJoin is an incremental time-window band join. Not safe for concurrent
// use.
type TimeJoin struct {
	opts    TimeJoinOptions
	rings   [2]*window.TimeRing
	idxs    [2]*btree.Tree
	caps    [2]int
	matches uint64
	tuples  uint64
}

// NewTimeJoin builds an incremental time-based join operator.
func NewTimeJoin(o TimeJoinOptions) (*TimeJoin, error) {
	if o.Span == 0 {
		return nil, fmt.Errorf("pimtree: time window span must be positive")
	}
	j := &TimeJoin{opts: o}
	j.rings[0] = window.NewTimeRing(o.Span, 1024)
	j.idxs[0] = btree.New()
	if o.Self {
		j.rings[1] = j.rings[0]
		j.idxs[1] = j.idxs[0]
	} else {
		j.rings[1] = window.NewTimeRing(o.Span, 1024)
		j.idxs[1] = btree.New()
	}
	j.caps[0] = j.rings[0].Capacity()
	j.caps[1] = j.rings[1].Capacity()
	return j, nil
}

// Push processes one tuple with timestamp ts (non-decreasing per stream; the
// opposite stream's clock is advanced too so expiry is symmetric). It
// returns the number of matches produced.
func (j *TimeJoin) Push(s StreamID, key uint32, ts uint64) int {
	own, opp := j.sid(s), j.oppID(s)
	ownRing, oppRing := j.rings[own], j.rings[opp]
	ownIdx, oppIdx := j.idxs[own], j.idxs[opp]

	// Evict expired tuples of the opposite window before the lookup.
	oppRing.AdvanceTime(ts, func(p kv.Pair) { oppIdx.Delete(p) })

	lo := key - j.opts.Diff
	if lo > key {
		lo = 0
	}
	hi := key + j.opts.Diff
	if hi < key {
		hi = ^uint32(0)
	}
	probeSeq := ownRing.Now()
	matches := 0
	oppIdx.Query(lo, hi, func(p kv.Pair) bool {
		if oppRing.Live(p.Ref) {
			matches++
			if j.opts.OnMatch != nil {
				_, seq := oppRing.Get(p.Ref)
				j.opts.OnMatch(Match{ProbeStream: s, ProbeSeq: probeSeq, MatchSeq: seq})
			}
		}
		return true
	})

	ref, _ := ownRing.Append(key, ts, func(p kv.Pair) { ownIdx.Delete(p) })
	ownIdx.Insert(kv.Pair{Key: key, Ref: ref})
	// Time windows are unbounded in population; ring growth re-homes refs,
	// so the index is rebuilt when it happens.
	if ownRing.NeedsReindex(j.caps[own]) {
		j.caps[own] = ownRing.Capacity()
		ownIdx.Reset()
		mask := uint64(ownRing.Capacity() - 1)
		ownRing.Scan(func(key uint32, seq uint64, _ uint64) bool {
			ownIdx.Insert(kv.Pair{Key: key, Ref: uint32(seq & mask)})
			return true
		})
	}
	j.matches += uint64(matches)
	j.tuples++
	return matches
}

// Matches returns the total number of matches produced so far.
func (j *TimeJoin) Matches() uint64 { return j.matches }

// Tuples returns the number of tuples pushed so far.
func (j *TimeJoin) Tuples() uint64 { return j.tuples }

// WindowCount returns the live population of a stream's window.
func (j *TimeJoin) WindowCount(s StreamID) int { return j.rings[j.sid(s)].Count() }

func (j *TimeJoin) sid(s StreamID) int {
	if j.opts.Self {
		return 0
	}
	return int(s)
}

func (j *TimeJoin) oppID(s StreamID) int {
	if j.opts.Self {
		return 0
	}
	return 1 - int(s)
}

// TimedArrival is one tuple with an event timestamp for the batch-parallel
// time join.
type TimedArrival struct {
	Stream StreamID
	Key    uint32
	TS     uint64
}

// ParallelTimeOptions configures the multicore time-window band join — the
// time-based variant of the paper's Section 4 algorithm, where timestamps
// replace the count-window boundary snapshots.
type ParallelTimeOptions struct {
	Threads  int
	TaskSize int
	Span     uint64 // window duration in timestamp units (required)
	MaxLive  int    // upper bound on simultaneously live tuples per window (required)
	Self     bool
	Diff     uint32
	Index    IndexOptions // PIM-Tree tuning (merge ratio defaults to 1)
	OnMatch  func(Match)  // observes matches in arrival order
}

// RunParallelTime executes the parallel shared-index time-window join over
// timestamp-ordered arrivals.
func RunParallelTime(arrivals []TimedArrival, o ParallelTimeOptions) (RunStats, error) {
	if o.Span == 0 {
		return RunStats{}, fmt.Errorf("pimtree: Span must be positive")
	}
	if o.MaxLive <= 0 {
		return RunStats{}, fmt.Errorf("pimtree: MaxLive must be positive")
	}
	mergeRatio := o.Index.MergeRatio
	if mergeRatio == 0 {
		mergeRatio = 1
	}
	cfg := join.SharedTimeConfig{
		Threads:  o.Threads,
		TaskSize: o.TaskSize,
		Span:     o.Span,
		MaxLive:  o.MaxLive,
		Self:     o.Self,
		Band:     join.Band{Diff: o.Diff},
		PIM: core.PIMTreeConfig{
			MergeRatio:     mergeRatio,
			InsertionDepth: o.Index.InsertionDepth,
		},
	}
	if o.OnMatch != nil {
		cb := o.OnMatch
		cfg.Sink = func(s uint8, probe, match uint64) {
			cb(Match{ProbeStream: StreamID(s), ProbeSeq: probe, MatchSeq: match})
		}
	}
	in := make([]join.TimedArrival, len(arrivals))
	for i, a := range arrivals {
		in[i] = join.TimedArrival{Stream: uint8(a.Stream), Key: a.Key, TS: a.TS}
	}
	st := join.RunSharedTime(in, cfg)
	return RunStats{
		Tuples:    st.Tuples,
		Matches:   st.Matches,
		Elapsed:   st.Elapsed,
		Mtps:      st.Mtps(),
		Merges:    st.Merges,
		MergeTime: st.MergeTime,
	}, nil
}
