// Trading: an algorithmic-trading style band join (one of the paper's
// motivating applications). Stream R carries executed trades, stream S
// carries quotes; the query pairs every trade with quotes whose price lies
// within a tick band, over asymmetric windows (quotes arrive ~4x as often
// as trades and keep a larger history):
//
//	SELECT * FROM trades t, quotes q
//	WHERE ABS(t.price - q.price) <= band    [windows: 16K trades, 64K quotes]
//
// The example runs the same workload twice — on the single-threaded engine
// and on the multicore shared-index join — and compares results and
// throughput, demonstrating that the parallel operator preserves the result
// set and its arrival order.
//
// Run with:
//
//	go run ./examples/trading
package main

import (
	"fmt"
	"log"
	"time"

	"pimtree"
)

func main() {
	const (
		tradeWindow = 1 << 14
		quoteWindow = 1 << 16
		tuples      = 400_000
		quoteShare  = 0.8 // quotes are 80% of arrivals
	)

	// Prices cluster around the midpoint of the domain: a Gaussian source
	// mimics a instrument trading in a band.
	mkPrices := func(seed int64) pimtree.KeySource {
		return pimtree.GaussianSource(seed, 0.5, 0.05)
	}
	band := pimtree.CalibrateDiff(mkPrices, quoteWindow, 4) // ~4 quotes per trade

	arrivals := pimtree.Interleave(7, mkPrices(8), mkPrices(9), quoteShare, tuples)

	// Single-threaded reference run.
	serial, err := pimtree.NewJoin(pimtree.JoinOptions{
		WindowR: tradeWindow,
		WindowS: quoteWindow,
		Diff:    band,
		Backend: pimtree.PIMTree,
	})
	if err != nil {
		log.Fatal(err)
	}
	t0 := time.Now()
	for _, a := range arrivals {
		serial.Push(a.Stream, a.Key)
	}
	serialElapsed := time.Since(t0)

	// Multicore run over the identical workload.
	var firstMatches int
	st, err := pimtree.RunParallel(arrivals, pimtree.ParallelOptions{
		WindowR: tradeWindow,
		WindowS: quoteWindow,
		Diff:    band,
		OnMatch: func(m pimtree.Match) {
			if firstMatches < 3 {
				firstMatches++
				fmt.Printf("  sample match: stream=%d probe#%d ↔ opposite#%d\n",
					m.ProbeStream, m.ProbeSeq, m.MatchSeq)
			}
		},
		RecordLatency: true,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("trade/quote band join: %d arrivals, windows %d/%d, band=%d\n",
		tuples, tradeWindow, quoteWindow, band)
	fmt.Printf("serial:   %.2f Mtps, %d matched pairs\n",
		float64(tuples)/serialElapsed.Seconds()/1e6, serial.Matches())
	fmt.Printf("parallel: %.2f Mtps, %d matched pairs, mean latency %.1f µs (p99 %.1f µs)\n",
		st.Mtps, st.Matches, st.MeanMicros, st.P99Micros)
	if st.Matches != serial.Matches() {
		log.Fatalf("result mismatch: serial %d vs parallel %d", serial.Matches(), st.Matches)
	}
	fmt.Println("parallel result set identical to the serial reference ✓")
}
