// Sensors: a time-based window join — the paper's Section 2.1 extension
// ("there is no technical limitation for applying our approach to time-based
// sliding windows"), exposed through the public TimeJoin API.
//
// Two sensor arrays stream temperature readings with event-time timestamps
// at different, irregular rates. The query correlates readings whose values
// agree within a tolerance and whose event times fall within a 2-second
// window of each other:
//
//	SELECT * FROM array_a a, array_b b
//	WHERE ABS(a.temp - b.temp) <= tol AND |a.ts - b.ts| < 2s
//
// Run with:
//
//	go run ./examples/sensors
package main

import (
	"fmt"
	"log"
	"math/rand"

	"pimtree"
)

func main() {
	const (
		spanNanos = 2_000_000_000 // 2 s window
		readings  = 300_000
		tol       = 1 << 16 // value tolerance in raw sensor units
	)

	j, err := pimtree.NewTimeJoin(pimtree.TimeJoinOptions{
		Span: spanNanos,
		Diff: tol,
	})
	if err != nil {
		log.Fatal(err)
	}

	rng := rand.New(rand.NewSource(17))
	now := uint64(0)
	var pushedA, pushedB int
	// A drifting shared temperature field: both arrays observe the same
	// signal plus noise, so in-window correlations abound.
	signal := float64(1 << 30)
	for i := 0; i < readings; i++ {
		// Irregular arrivals: mean 50µs gap, array B reports ~2x as often.
		now += uint64(rng.Intn(100_000))
		signal += (rng.Float64() - 0.5) * float64(1<<18)
		if signal < float64(tol) {
			signal = float64(tol)
		}
		value := uint32(signal) + uint32(rng.Intn(tol/2))
		if rng.Intn(3) == 0 {
			j.Push(pimtree.R, value, now)
			pushedA++
		} else {
			j.Push(pimtree.S, value, now)
			pushedB++
		}
	}

	fmt.Printf("array A readings: %d, array B readings: %d\n", pushedA, pushedB)
	fmt.Printf("window populations at end: A=%d B=%d (time-based, self-sizing)\n",
		j.WindowCount(pimtree.R), j.WindowCount(pimtree.S))
	fmt.Printf("correlated pairs within 2s and ±%d units: %d (%.2f per reading)\n",
		tol, j.Matches(), float64(j.Matches())/float64(readings))
	if j.Matches() == 0 {
		log.Fatal("expected correlated readings")
	}
}
