// Adaptive: the sharded engine's online rebalancing layer on a workload
// static sharding cannot handle — a hot key band that jumps location
// mid-stream (step skew). Static equal-width shards serialize on whichever
// shard owns the current band; the adaptive engine detects the imbalance,
// recomputes boundaries from a sample of recent keys, and migrates the live
// windows, splitting the hot band across every shard. Both runs are driven
// through the streaming Engine API, one tuple at a time.
//
// Run with:
//
//	go run ./examples/adaptive
package main

import (
	"context"
	"fmt"
	"log"
	"runtime"

	"pimtree"
)

func main() {
	const (
		windowLen = 1 << 12
		tuples    = 64 * windowLen // adaptation plays out over many windows
		period    = 16 * windowLen // hot band jumps every 16 windows
		hotWidth  = 1.0 / 16       // hot band covers 1/16 of the key domain
	)
	shards := runtime.GOMAXPROCS(0)
	if shards < 2 {
		shards = 2
	}

	// Keys uniform inside the hot band, so the band predicate holding the
	// match rate at ~2 is the uniform closed form scaled by the band width.
	diff := uint32(hotWidth * float64(pimtree.DiffForMatchRate(windowLen, 2)))
	// Both streams share a generator seed so their hot bands coincide.
	arrivals := pimtree.Interleave(1,
		pimtree.StepSkewSource(2, hotWidth, period),
		pimtree.StepSkewSource(2, hotWidth, period), 0.5, tuples)

	base := pimtree.Config{
		Mode:    pimtree.ModeSharded,
		WindowR: windowLen, WindowS: windowLen, Diff: diff,
		Shards: shards,
	}
	run := func(cfg pimtree.Config) pimtree.RunStats {
		e, err := pimtree.Open(cfg)
		if err != nil {
			log.Fatal(err)
		}
		// The streaming shape: one push per arrival, exactly what a live
		// ingest loop would do.
		for _, a := range arrivals {
			if err := e.Push(a.Stream, a.Key); err != nil {
				log.Fatal(err)
			}
		}
		st, err := e.Close(context.Background())
		if err != nil {
			log.Fatal(err)
		}
		return st
	}

	static := run(base)
	adaptiveCfg := base
	adaptiveCfg.Adaptive = true
	// Defaults are fine; set explicitly here to show the knobs.
	adaptiveCfg.Rebalance = pimtree.RebalancePolicy{
		MaxRatio:   1.5,
		MinGap:     4 * windowLen,
		SampleSize: 4096,
	}
	adaptive := run(adaptiveCfg)

	fmt.Printf("step-skew workload: %d tuples, hot band 1/16 of domain jumping every %d tuples, %d shards\n",
		tuples, period, shards)
	fmt.Printf("  static  (equal-width): %7.2f Mtps, %d matches\n", static.Mtps, static.Matches)
	fmt.Printf("  adaptive (rebalanced): %7.2f Mtps, %d matches\n", adaptive.Mtps, adaptive.Matches)
	fmt.Printf("  rebalance epochs: %d, window tuples migrated: %d\n",
		adaptive.Rebalances, adaptive.MigratedTuples)
	if static.Matches != adaptive.Matches {
		log.Fatal("match counts diverged — rebalancing must never change the join result")
	}
	fmt.Println("  match multisets identical: rebalancing only moves work, never results")
}
