// Adaptive: the sharded runtime's online rebalancing layer on a workload
// static sharding cannot handle — a hot key band that jumps location
// mid-stream (step skew). Static equal-width shards serialize on whichever
// shard owns the current band; the adaptive runtime detects the imbalance,
// recomputes boundaries from a sample of recent keys, and migrates the live
// windows, splitting the hot band across every shard.
//
// Run with:
//
//	go run ./examples/adaptive
package main

import (
	"fmt"
	"log"
	"runtime"

	"pimtree"
)

func main() {
	const (
		windowLen = 1 << 12
		tuples    = 64 * windowLen // adaptation plays out over many windows
		period    = 16 * windowLen // hot band jumps every 16 windows
		hotWidth  = 1.0 / 16       // hot band covers 1/16 of the key domain
	)
	shards := runtime.GOMAXPROCS(0)
	if shards < 2 {
		shards = 2
	}

	// Keys uniform inside the hot band, so the band predicate holding the
	// match rate at ~2 is the uniform closed form scaled by the band width.
	diff := uint32(hotWidth * float64(pimtree.DiffForMatchRate(windowLen, 2)))
	opts := pimtree.JoinOptions{
		WindowR: windowLen,
		WindowS: windowLen,
		Diff:    diff,
		Backend: pimtree.PIMTree,
	}
	// Both streams share a generator seed so their hot bands coincide.
	arrivals := pimtree.Interleave(1,
		pimtree.StepSkewSource(2, hotWidth, period),
		pimtree.StepSkewSource(2, hotWidth, period), 0.5, tuples)

	static, err := pimtree.RunSharded(arrivals, pimtree.ShardedOptions{
		JoinOptions: opts,
		Shards:      shards,
	})
	if err != nil {
		log.Fatal(err)
	}
	adaptive, err := pimtree.RunSharded(arrivals, pimtree.ShardedOptions{
		JoinOptions: opts,
		Shards:      shards,
		Adaptive:    true,
		// Defaults are fine; set explicitly here to show the knobs.
		Rebalance: pimtree.RebalancePolicy{
			MaxRatio:   1.5,
			MinGap:     4 * windowLen,
			SampleSize: 4096,
		},
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("step-skew workload: %d tuples, hot band 1/16 of domain jumping every %d tuples, %d shards\n",
		tuples, period, shards)
	fmt.Printf("  static  (equal-width): %7.2f Mtps, %d matches\n", static.Mtps, static.Matches)
	fmt.Printf("  adaptive (rebalanced): %7.2f Mtps, %d matches\n", adaptive.Mtps, adaptive.Matches)
	fmt.Printf("  rebalance epochs: %d, window tuples migrated: %d\n",
		adaptive.Rebalances, adaptive.MigratedTuples)
	if static.Matches != adaptive.Matches {
		log.Fatal("match counts diverged — rebalancing must never change the join result")
	}
	fmt.Println("  match multisets identical: rebalancing only moves work, never results")
}
