// Serve: the network serving layer end to end — a pimtree engine behind
// the binary wire protocol, driven by the minimal Go client: binary ingest
// in, match egress out, a drain round-trip, an admin /stats scrape, and a
// graceful shutdown. With no flags the server runs in-process on a loopback
// port and the received match stream is verified against a direct
// Engine.PushBatch run of the same input; with -addr it acts as a pure
// loopback client against an already-running `pimjoin serve` (the CI smoke
// job drives it that way).
//
// Run with:
//
//	go run ./examples/serve
//	pimjoin serve -addr :9040 -admin :9041 -w 4096 &
//	go run ./examples/serve -addr 127.0.0.1:9040 -admin 127.0.0.1:9041 -n 50000
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"log"
	"net/http"
	"os"
	"time"

	"pimtree"
	"pimtree/internal/server"
)

func main() {
	var (
		addr  = flag.String("addr", "", "connect to an existing pimjoin serve at this address (empty: run an in-process server)")
		admin = flag.String("admin", "", "scrape this admin endpoint's /stats after draining (host:port)")
		n     = flag.Int("n", 100_000, "tuples to push")
		w     = flag.Int("w", 4096, "window length (in-process server only)")
	)
	flag.Parse()
	diff := pimtree.DiffForMatchRate(*w, 2)
	arrivals := pimtree.Interleave(1, pimtree.UniformSource(2), pimtree.UniformSource(3), 0.5, *n)

	var srv *server.Server
	target := *addr
	if target == "" {
		// In-process server: the same wiring `pimjoin serve` performs.
		eng, err := pimtree.Open(pimtree.Config{
			Mode:    pimtree.ModeSharded,
			WindowR: *w, WindowS: *w, Diff: diff,
		})
		if err != nil {
			log.Fatal(err)
		}
		srv, err = server.New(eng, server.Options{Addr: "127.0.0.1:0", AdminAddr: "127.0.0.1:0", Slow: server.Block})
		if err != nil {
			log.Fatal(err)
		}
		target = srv.Addr().String()
		fmt.Printf("serve: in-process server on %s (admin http://%s)\n", target, srv.AdminAddr())
	}

	// The client half: subscribe for match egress and consume the stream
	// concurrently with pushing — the real subscriber pattern, which keeps
	// the per-subscriber queue shallow — then drain: the acknowledgement
	// arrives after every match the pushed tuples produced.
	c, err := server.Dial(target, server.DialOptions{Subscribe: true})
	if err != nil {
		log.Fatal(err)
	}
	defer c.Close()
	collected := make(chan []pimtree.Match, 1)
	go func() {
		var ms []pimtree.Match
		for {
			ev, err := c.ReadEvent()
			if err != nil {
				log.Fatal(err)
			}
			switch ev.Type {
			case server.FrameMatch:
				ms = append(ms, ev.Matches...)
			case server.FrameDrained:
				collected <- ms
				return
			case server.FrameError:
				log.Fatalf("server error: %s", ev.Err)
			}
		}
	}()
	start := time.Now()
	const batch = 512
	for lo := 0; lo < len(arrivals); lo += batch {
		hi := min(lo+batch, len(arrivals))
		if err := c.PushBatch(arrivals[lo:hi]); err != nil {
			log.Fatal(err)
		}
	}
	if err := c.Drain(); err != nil {
		log.Fatal(err)
	}
	matches := <-collected
	elapsed := time.Since(start)
	fmt.Printf("serve: pushed %d tuples, received %d matches over the wire in %v (%.3f Mtps)\n",
		len(arrivals), len(matches), elapsed.Round(time.Millisecond),
		float64(len(arrivals))/elapsed.Seconds()/1e6)

	if *admin != "" {
		scrapeStats("http://" + *admin)
	}

	if srv == nil {
		return // client-only mode: the server keeps running
	}
	if srv.AdminAddr() != nil {
		scrapeStats("http://" + srv.AdminAddr().String())
	}

	// Verify the wire path against the in-process oracle: the served match
	// multiset must be exactly what a direct PushBatch run produces.
	direct := directMatches(pimtree.Config{
		Mode:    pimtree.ModeSharded,
		WindowR: *w, WindowS: *w, Diff: diff,
	}, arrivals)
	if !sameMultiset(matches, direct) {
		fmt.Printf("serve: MISMATCH — wire %d matches, direct %d\n", len(matches), len(direct))
		os.Exit(1)
	}
	fmt.Printf("serve: wire match multiset identical to direct PushBatch (%d matches)\n", len(direct))

	st, err := srv.Shutdown(context.Background())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("serve: graceful shutdown — final %d tuples, %d matches\n", st.Tuples, st.Matches)
}

// scrapeStats prints the admin endpoint's JSON snapshot.
func scrapeStats(base string) {
	resp, err := http.Get(base + "/stats")
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("serve: /stats →\n%s", body)
}

// directMatches replays the arrivals through a bare engine.
func directMatches(cfg pimtree.Config, arrivals []pimtree.Arrival) []pimtree.Match {
	e, err := pimtree.Open(cfg)
	if err != nil {
		log.Fatal(err)
	}
	seq := e.Matches()
	out := make(chan []pimtree.Match, 1)
	go func() {
		var ms []pimtree.Match
		for m := range seq {
			ms = append(ms, m)
		}
		out <- ms
	}()
	if err := e.PushBatch(arrivals); err != nil {
		log.Fatal(err)
	}
	if _, err := e.Close(context.Background()); err != nil {
		log.Fatal(err)
	}
	return <-out
}

func sameMultiset(a, b []pimtree.Match) bool {
	if len(a) != len(b) {
		return false
	}
	seen := make(map[pimtree.Match]int, len(a))
	for _, m := range a {
		seen[m]++
	}
	for _, m := range b {
		if seen[m] == 0 {
			return false
		}
		seen[m]--
	}
	return true
}
