// Quickstart: a minimal sliding-window band join over two synthetic streams
// using the PIM-Tree backend — the smallest end-to-end use of the public
// API.
//
// This example deliberately sticks to the batch compatibility wrappers
// (NewJoin, RunParallel) as a migration reference; the streaming Engine API
// (pimtree.Open) behind them is demonstrated by examples/sharded,
// examples/adaptive, and examples/outoforder.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"time"

	"pimtree"
)

func main() {
	const (
		windowLen = 1 << 14 // 16K tuples per window
		tuples    = 500_000
	)

	// A band width that yields roughly two matches per tuple against a
	// window of uniform keys (the paper's default workload).
	diff := pimtree.DiffForMatchRate(windowLen, 2)

	j, err := pimtree.NewJoin(pimtree.JoinOptions{
		WindowR: windowLen,
		WindowS: windowLen,
		Diff:    diff,
		Backend: pimtree.PIMTree,
	})
	if err != nil {
		log.Fatal(err)
	}

	// Two deterministic uniform streams, interleaved 50/50.
	arrivals := pimtree.Interleave(1, pimtree.UniformSource(2), pimtree.UniformSource(3), 0.5, tuples)

	start := time.Now()
	for _, a := range arrivals {
		j.Push(a.Stream, a.Key)
	}
	elapsed := time.Since(start)

	merges, mergeTime := j.Merges()
	fmt.Printf("processed %d tuples in %v (%.2f Mtps)\n",
		tuples, elapsed.Round(time.Millisecond), float64(tuples)/elapsed.Seconds()/1e6)
	fmt.Printf("matches: %d (%.2f per tuple, target 2.0)\n",
		j.Matches(), float64(j.Matches())/float64(tuples))
	fmt.Printf("index merges: %d, total merge time %v\n", merges, mergeTime.Round(time.Millisecond))
}
