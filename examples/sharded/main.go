// Sharded: the key-range sharded runtime driven through the streaming
// Engine API — one long-lived session per run, fed incrementally, with live
// Stats snapshots mid-stream — side by side with the paper's shared-index
// runtime on the same workload, plus a skewed workload routed through a
// quantile partitioner.
//
// Run with:
//
//	go run ./examples/sharded
package main

import (
	"context"
	"fmt"
	"log"
	"runtime"

	"pimtree"
)

// drive pushes a workload through one engine session, printing a Stats
// snapshot mid-stream, and returns the final run statistics.
func drive(cfg pimtree.Config, arrivals []pimtree.Arrival) pimtree.RunStats {
	e, err := pimtree.Open(cfg)
	if err != nil {
		log.Fatal(err)
	}
	half := len(arrivals) / 2
	if err := e.PushBatch(arrivals[:half]); err != nil {
		log.Fatal(err)
	}
	// Mid-stream visibility: Drain brings the session to a deterministic
	// quiescent point, so this snapshot counts every pushed tuple's matches.
	if err := e.Drain(context.Background()); err != nil {
		log.Fatal(err)
	}
	mid := e.Stats()
	fmt.Printf("    mid-stream (%s): %d tuples, %d matches\n", e.Mode(), mid.Tuples, mid.Matches)
	if err := e.PushBatch(arrivals[half:]); err != nil {
		log.Fatal(err)
	}
	st, err := e.Close(context.Background())
	if err != nil {
		log.Fatal(err)
	}
	return st
}

func main() {
	const (
		windowLen = 1 << 14
		tuples    = 1 << 19
	)
	shards := runtime.GOMAXPROCS(0)
	diff := pimtree.DiffForMatchRate(windowLen, 2)

	// Uniform keys: equal-width shard ranges balance by construction.
	arrivals := pimtree.Interleave(1, pimtree.UniformSource(2), pimtree.UniformSource(3), 0.5, tuples)

	fmt.Printf("uniform workload, %d tuples, %d workers:\n", tuples, shards)
	sharded := drive(pimtree.Config{
		Mode:    pimtree.ModeSharded,
		WindowR: windowLen, WindowS: windowLen, Diff: diff,
		Shards: shards,
	}, arrivals)
	shared := drive(pimtree.Config{
		Mode:    pimtree.ModeShared,
		WindowR: windowLen, WindowS: windowLen, Diff: diff,
		Threads: shards,
	}, arrivals)
	fmt.Printf("  sharded (key-range): %7.2f Mtps, %d matches\n", sharded.Mtps, sharded.Matches)
	fmt.Printf("  shared  (PIM-Tree):  %7.2f Mtps, %d matches\n", shared.Mtps, shared.Matches)

	// Skewed keys: equal-width ranges would send almost everything to the
	// central shards; quantile boundaries from a key sample restore
	// balance.
	src := pimtree.GaussianSource(4, 0.5, 0.125)
	sample := make([]uint32, 1<<13)
	for i := range sample {
		sample[i] = src.Next()
	}
	skewed := pimtree.Interleave(5,
		pimtree.GaussianSource(6, 0.5, 0.125),
		pimtree.GaussianSource(7, 0.5, 0.125), 0.5, tuples)
	skewDiff := pimtree.CalibrateDiff(func(s int64) pimtree.KeySource {
		return pimtree.GaussianSource(s, 0.5, 0.125)
	}, windowLen, 2)

	base := pimtree.Config{
		Mode:    pimtree.ModeSharded,
		WindowR: windowLen, WindowS: windowLen, Diff: skewDiff,
		Shards: shards,
	}
	equal := drive(base, skewed)
	quant := base
	quant.Partitioner = pimtree.QuantilePartition(sample, shards)
	quantile := drive(quant, skewed)
	fmt.Printf("gaussian skew workload:\n")
	fmt.Printf("  equal-width shards:  %7.2f Mtps, %d matches\n", equal.Mtps, equal.Matches)
	fmt.Printf("  quantile shards:     %7.2f Mtps, %d matches\n", quantile.Mtps, quantile.Matches)
}
