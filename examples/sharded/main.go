// Sharded: the key-range sharded parallel join runtime side by side with
// the paper's shared-index runtime on the same workload, plus a skewed
// workload routed through a quantile partitioner.
//
// Run with:
//
//	go run ./examples/sharded
package main

import (
	"fmt"
	"log"
	"runtime"

	"pimtree"
)

func main() {
	const (
		windowLen = 1 << 14
		tuples    = 1 << 19
	)
	shards := runtime.GOMAXPROCS(0)
	diff := pimtree.DiffForMatchRate(windowLen, 2)
	opts := pimtree.JoinOptions{
		WindowR: windowLen,
		WindowS: windowLen,
		Diff:    diff,
		Backend: pimtree.PIMTree,
	}

	// Uniform keys: equal-width shard ranges balance by construction.
	arrivals := pimtree.Interleave(1, pimtree.UniformSource(2), pimtree.UniformSource(3), 0.5, tuples)

	sharded, err := pimtree.RunSharded(arrivals, pimtree.ShardedOptions{
		JoinOptions: opts,
		Shards:      shards,
	})
	if err != nil {
		log.Fatal(err)
	}
	shared, err := pimtree.RunParallel(arrivals, pimtree.ParallelOptions{
		Threads: shards,
		WindowR: windowLen,
		WindowS: windowLen,
		Diff:    diff,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("uniform workload, %d tuples, %d workers:\n", tuples, shards)
	fmt.Printf("  sharded (key-range): %7.2f Mtps, %d matches\n", sharded.Mtps, sharded.Matches)
	fmt.Printf("  shared  (PIM-Tree):  %7.2f Mtps, %d matches\n", shared.Mtps, shared.Matches)

	// Skewed keys: equal-width ranges would send almost everything to the
	// central shards; quantile boundaries from a key sample restore
	// balance.
	src := pimtree.GaussianSource(4, 0.5, 0.125)
	sample := make([]uint32, 1<<13)
	for i := range sample {
		sample[i] = src.Next()
	}
	skewed := pimtree.Interleave(5,
		pimtree.GaussianSource(6, 0.5, 0.125),
		pimtree.GaussianSource(7, 0.5, 0.125), 0.5, tuples)
	opts.Diff = pimtree.CalibrateDiff(func(s int64) pimtree.KeySource {
		return pimtree.GaussianSource(s, 0.5, 0.125)
	}, windowLen, 2)

	equal, err := pimtree.RunSharded(skewed, pimtree.ShardedOptions{JoinOptions: opts, Shards: shards})
	if err != nil {
		log.Fatal(err)
	}
	quantile, err := pimtree.RunSharded(skewed, pimtree.ShardedOptions{
		JoinOptions: opts,
		Partitioner: pimtree.QuantilePartition(sample, shards),
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("gaussian skew workload:\n")
	fmt.Printf("  equal-width shards:  %7.2f Mtps, %d matches\n", equal.Mtps, equal.Matches)
	fmt.Printf("  quantile shards:     %7.2f Mtps, %d matches\n", quantile.Mtps, quantile.Matches)
}
