// Out-of-order ingestion: event-time streams never arrive perfectly sorted
// — network jitter, retries, and multi-source fan-in all disorder them. This
// demo builds a timestamp-sorted workload, applies a bounded-disorder
// shuffle, and shows the three time-capable runtimes (serial TimeJoin,
// parallel RunParallelTime, sharded RunShardedTime) joining the shuffled
// stream with exactly the match count of the sorted original, as long as the
// configured Slack covers the disorder. It then tightens the slack below the
// actual disorder and shows the late-tuple policy taking over.
//
// Run with:
//
//	go run ./examples/outoforder
package main

import (
	"fmt"
	"log"

	"pimtree"
)

func main() {
	const (
		tuples  = 400_000
		span    = 1 << 15 // window duration in timestamp units
		slack   = 1 << 9  // tolerated disorder
		diff    = 1 << 12 // band half-width
		maxLive = 1 << 13
	)

	// A sorted two-stream workload with irregular event-time gaps, then a
	// shuffle whose disorder is bounded by the slack.
	sorted := pimtree.TimestampArrivals(7,
		pimtree.Interleave(8, pimtree.UniformSource(9), pimtree.UniformSource(10), 0.5, tuples), 4)
	shuffled := pimtree.ShuffleWithinSlack(11, sorted, slack)

	// Reference: the strict serial join over the sorted original.
	oracle, err := pimtree.NewTimeJoin(pimtree.TimeJoinOptions{Span: span, Diff: diff})
	if err != nil {
		log.Fatal(err)
	}
	for _, a := range sorted {
		oracle.Push(a.Stream, a.Key, a.TS)
	}
	fmt.Printf("sorted oracle:       %d matches over %d tuples\n", oracle.Matches(), tuples)

	// 1. Serial TimeJoin in buffered mode over the shuffled stream.
	j, err := pimtree.NewTimeJoin(pimtree.TimeJoinOptions{
		Span: span, Diff: diff, Slack: slack, LatePolicy: pimtree.LateDrop,
	})
	if err != nil {
		log.Fatal(err)
	}
	for _, a := range shuffled {
		j.Push(a.Stream, a.Key, a.TS)
	}
	j.Flush()
	fmt.Printf("TimeJoin (ooo):      %d matches, %d late, max disorder %d\n",
		j.Matches(), j.LateDropped(), j.MaxObservedDisorder())

	// 2. Parallel shared-index time join.
	par, err := pimtree.RunParallelTime(shuffled, pimtree.ParallelTimeOptions{
		Threads: 4, Span: span, MaxLive: maxLive, Diff: diff,
		Slack: slack, LatePolicy: pimtree.LateDrop,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("RunParallelTime:     %d matches, %d late (%.2f Mtps)\n",
		par.Matches, par.LateDropped, par.Mtps)

	// 3. Sharded time runtime: disorder is admitted at the router.
	sh, err := pimtree.RunShardedTime(shuffled, pimtree.ShardedTimeOptions{
		Shards: 4, Span: span, MaxLive: maxLive, Diff: diff,
		Slack: slack, LatePolicy: pimtree.LateDrop,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("RunShardedTime:      %d matches, %d late (%.2f Mtps)\n",
		sh.Matches, sh.LateDropped, sh.Mtps)

	if j.Matches() != oracle.Matches() || par.Matches != oracle.Matches() || sh.Matches != oracle.Matches() {
		log.Fatal("runtimes disagreed with the sorted oracle")
	}
	fmt.Println("all three runtimes reproduced the sorted oracle exactly")

	// Tighten the slack below the actual disorder: late tuples appear and
	// follow the policy — here the side-channel callback.
	lates := 0
	tight, err := pimtree.RunShardedTime(shuffled, pimtree.ShardedTimeOptions{
		Shards: 4, Span: span, MaxLive: maxLive, Diff: diff,
		Slack: slack / 16, LatePolicy: pimtree.LateCall,
		OnLate: func(pimtree.TimedArrival, uint64) { lates++ },
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("slack/16 + LateCall: %d matches, %d tuples handed to the side channel\n",
		tight.Matches, lates)
	if lates == 0 {
		log.Fatal("expected late tuples under the tightened slack")
	}
}
