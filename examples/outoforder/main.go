// Out-of-order ingestion: event-time streams never arrive perfectly sorted
// — network jitter, retries, and multi-source fan-in all disorder them. This
// demo builds a timestamp-sorted workload, applies a bounded-disorder
// shuffle, and shows the time-capable layers joining the shuffled stream
// with exactly the match count of the sorted original, as long as the
// configured Slack covers the disorder: the serial TimeJoin in buffered
// mode, and the sharded-time engine driven through the streaming Engine API
// (PushTimed + pull-side Matches). It then tightens the slack below the
// actual disorder and shows the late-tuple policy taking over.
//
// Run with:
//
//	go run ./examples/outoforder
package main

import (
	"context"
	"fmt"
	"log"

	"pimtree"
)

func main() {
	const (
		tuples  = 400_000
		span    = 1 << 15 // window duration in timestamp units
		slack   = 1 << 9  // tolerated disorder
		diff    = 1 << 12 // band half-width
		maxLive = 1 << 13
	)

	// A sorted two-stream workload with irregular event-time gaps, then a
	// shuffle whose disorder is bounded by the slack.
	sorted := pimtree.TimestampArrivals(7,
		pimtree.Interleave(8, pimtree.UniformSource(9), pimtree.UniformSource(10), 0.5, tuples), 4)
	shuffled := pimtree.ShuffleWithinSlack(11, sorted, slack)

	// Reference: the strict serial join over the sorted original.
	oracle, err := pimtree.NewTimeJoin(pimtree.TimeJoinOptions{Span: span, Diff: diff})
	if err != nil {
		log.Fatal(err)
	}
	for _, a := range sorted {
		oracle.Push(a.Stream, a.Key, a.TS)
	}
	fmt.Printf("sorted oracle:       %d matches over %d tuples\n", oracle.Matches(), tuples)

	// 1. Serial TimeJoin in buffered mode over the shuffled stream.
	j, err := pimtree.NewTimeJoin(pimtree.TimeJoinOptions{
		Span: span, Diff: diff, Slack: slack, LatePolicy: pimtree.LateDrop,
	})
	if err != nil {
		log.Fatal(err)
	}
	for _, a := range shuffled {
		j.Push(a.Stream, a.Key, a.TS)
	}
	j.Flush()
	fmt.Printf("TimeJoin (ooo):      %d matches, %d late, max disorder %d\n",
		j.Matches(), j.LateDropped(), j.MaxObservedDisorder())

	// 2. The sharded-time engine: disorder is admitted at the router, and
	// matches stream out through the pull side while tuples stream in.
	e, err := pimtree.Open(pimtree.Config{
		Mode: pimtree.ModeShardedTime,
		Span: span, MaxLive: maxLive, Diff: diff,
		Slack: slack, LatePolicy: pimtree.LateDrop,
	})
	if err != nil {
		log.Fatal(err)
	}
	pulled := make(chan uint64, 1)
	matches := e.Matches() // arm the pull side before the first push
	go func() {
		var n uint64
		for range matches {
			n++
		}
		pulled <- n
	}()
	for _, a := range shuffled {
		if err := e.PushTimed(a.Stream, a.Key, a.TS); err != nil {
			log.Fatal(err)
		}
	}
	st, err := e.Close(context.Background())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Engine sharded-time: %d matches, %d late (%.2f Mtps, pull side saw %d)\n",
		st.Matches, st.LateDropped, st.Mtps, <-pulled)

	if j.Matches() != oracle.Matches() || st.Matches != oracle.Matches() {
		log.Fatal("runtimes disagreed with the sorted oracle")
	}
	fmt.Println("both runtimes reproduced the sorted oracle exactly")

	// Tighten the slack below the actual disorder: late tuples appear and
	// follow the policy — here the side-channel callback.
	lates := 0
	tight, err := pimtree.Open(pimtree.Config{
		Mode: pimtree.ModeShardedTime,
		Span: span, MaxLive: maxLive, Diff: diff,
		Slack: slack / 16, LatePolicy: pimtree.LateCall,
		OnLate:         func(pimtree.TimedArrival, uint64) { lates++ },
		DiscardMatches: true, // count only; no match materialization
	})
	if err != nil {
		log.Fatal(err)
	}
	for _, a := range shuffled {
		if err := tight.PushTimed(a.Stream, a.Key, a.TS); err != nil {
			log.Fatal(err)
		}
	}
	tst, err := tight.Close(context.Background())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("slack/16 + LateCall: %d matches, %d tuples handed to the side channel\n",
		tst.Matches, lates)
	if lates == 0 {
		log.Fatal("expected late tuples under the tightened slack")
	}
}
