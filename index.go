package pimtree

import (
	"fmt"
	"time"

	"pimtree/internal/core"
	"pimtree/internal/kv"
)

// IndexOptions tunes a standalone PIM-Tree index. Zero values select the
// paper's defaults.
type IndexOptions struct {
	// MergeRatio is m: the mutable component merges into the immutable one
	// after m*w inserts. Valid values lie in (0, 1]; zero selects the
	// default. The paper recommends 1/16 for single-threaded use (the
	// default here) and 1 under heavy concurrency (the parallel drivers'
	// default).
	MergeRatio float64
	// InsertionDepth is DI: the depth of the immutable component whose
	// nodes anchor the insert partitions. Deeper means more, smaller
	// partitions (more concurrency, higher routing cost). Default 2.
	InsertionDepth int
}

// Index is a concurrent sliding-window index: a PIM-Tree plus the
// maintenance contract that makes coarse-grained disposal work. Entries are
// (key, ref) pairs where ref is an opaque 32-bit handle the caller uses to
// locate the tuple (typically a ring-buffer slot).
//
// Insert and Search are safe for concurrent use. Maintain must be called
// with external synchronization (no concurrent Insert), which is what the
// join drivers' merge barriers provide.
type Index struct {
	pt *core.PIMTree
}

// NewIndex creates an index sized for a window of windowLen tuples.
func NewIndex(windowLen int, opt IndexOptions) (*Index, error) {
	if windowLen <= 0 {
		return nil, fmt.Errorf("pimtree: window length %d must be positive", windowLen)
	}
	// Zero means "use the default"; everything else must land in (0, 1]
	// (the negated form also rejects NaN).
	if opt.MergeRatio != 0 && !(opt.MergeRatio > 0 && opt.MergeRatio <= 1) {
		return nil, fmt.Errorf("pimtree: merge ratio %f outside (0, 1] (zero selects the default)", opt.MergeRatio)
	}
	if opt.InsertionDepth < 0 {
		return nil, fmt.Errorf("pimtree: insertion depth %d must be >= 0", opt.InsertionDepth)
	}
	cfg := core.PIMTreeConfig{
		MergeRatio:     opt.MergeRatio,
		InsertionDepth: opt.InsertionDepth,
	}
	return &Index{pt: core.NewPIMTree(windowLen, cfg)}, nil
}

// Insert adds an entry. Safe for concurrent use.
func (ix *Index) Insert(key, ref uint32) {
	ix.pt.Insert(kv.Pair{Key: key, Ref: ref})
}

// Search visits every entry with lo <= key <= hi in key order. The result
// may include entries whose tuples have expired but are not yet merged away;
// callers filter via their window, as the join drivers do. Returning false
// from visit stops the scan. Safe for concurrent use with Insert.
func (ix *Index) Search(lo, hi uint32, visit func(key, ref uint32) bool) {
	ix.pt.Query(lo, hi, func(p kv.Pair) bool { return visit(p.Key, p.Ref) })
}

// NeedsMaintenance reports whether the mutable component has reached the
// merge threshold.
func (ix *Index) NeedsMaintenance() bool { return ix.pt.NeedsMerge() }

// Maintain merges the mutable component into the immutable one, dropping
// entries for which live returns false. It must not run concurrently with
// Insert or Search. Returns the merge duration.
func (ix *Index) Maintain(live func(ref uint32) bool) time.Duration {
	return ix.pt.MergeInPlace(func(p kv.Pair) bool { return live(p.Ref) })
}

// Len returns the number of stored entries (including expired-but-unmerged
// ones).
func (ix *Index) Len() int { return ix.pt.Len() }

// Subindexes returns the number of insert partitions currently active.
func (ix *Index) Subindexes() int { return ix.pt.Subindexes() }

// MemoryStats describes the index footprint in bytes.
type MemoryStats struct {
	ImmutableLeafBytes  int
	ImmutableInnerBytes int
	MutableBytes        int
	MergeBufferBytes    int
}

// Memory reports the index footprint.
func (ix *Index) Memory() MemoryStats {
	m := ix.pt.Memory()
	return MemoryStats{
		ImmutableLeafBytes:  m.TSLeafBytes,
		ImmutableInnerBytes: m.TSInnerBytes,
		MutableBytes:        m.TIBytes,
		MergeBufferBytes:    m.BufferBytes,
	}
}
