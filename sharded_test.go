package pimtree

import (
	"sort"
	"sync"
	"testing"
)

// collectSerial runs the single-threaded Join and returns its match multiset.
func collectSerial(t *testing.T, arr []Arrival, o JoinOptions) []Match {
	t.Helper()
	var out []Match
	o.OnMatch = func(m Match) { out = append(out, m) }
	j, err := NewJoin(o)
	if err != nil {
		t.Fatal(err)
	}
	for _, a := range arr {
		j.Push(a.Stream, a.Key)
	}
	return out
}

func sortMatches(ms []Match) {
	sort.Slice(ms, func(i, j int) bool {
		a, b := ms[i], ms[j]
		if a.ProbeStream != b.ProbeStream {
			return a.ProbeStream < b.ProbeStream
		}
		if a.ProbeSeq != b.ProbeSeq {
			return a.ProbeSeq < b.ProbeSeq
		}
		return a.MatchSeq < b.MatchSeq
	})
}

// TestGoldenSharded pins the acceptance criterion of the sharded runtime:
// RunSharded with 4 shards produces the identical match multiset — as
// (ProbeStream, ProbeSeq, MatchSeq) triples — as the single-threaded Join on
// the same input.
func TestGoldenSharded(t *testing.T) {
	const (
		n    = 10000
		w    = 256
		seed = 12345
	)
	arr := Interleave(seed, UniformSource(seed+1), UniformSource(seed+2), 0.5, n)
	diff := DiffForMatchRate(w, 2)

	want := collectSerial(t, arr, JoinOptions{WindowR: w, WindowS: w, Diff: diff, Backend: PIMTree})
	sortMatches(want)
	// The golden workload's pinned match count (see TestGoldenEndToEnd).
	if len(want) != 19356 {
		t.Fatalf("serial oracle produced %d matches, want 19356", len(want))
	}

	var mu sync.Mutex
	var got []Match
	st, err := RunSharded(arr, ShardedOptions{
		JoinOptions: JoinOptions{
			WindowR: w, WindowS: w, Diff: diff, Backend: PIMTree,
			OnMatch: func(m Match) {
				mu.Lock()
				got = append(got, m)
				mu.Unlock()
			},
		},
		Shards: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	if st.Matches != uint64(len(want)) {
		t.Fatalf("sharded matches = %d, want %d", st.Matches, len(want))
	}
	sortMatches(got)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("match %d differs: sharded %+v, serial %+v", i, got[i], want[i])
		}
	}
}

// TestRunShardedValidation covers the error paths of the public API.
func TestRunShardedValidation(t *testing.T) {
	arr := []Arrival{{Stream: R, Key: 1}}
	if _, err := RunSharded(arr, ShardedOptions{JoinOptions: JoinOptions{WindowS: 4}}); err == nil {
		t.Fatal("missing WindowR accepted")
	}
	if _, err := RunSharded(arr, ShardedOptions{JoinOptions: JoinOptions{WindowR: 4}}); err == nil {
		t.Fatal("missing WindowS accepted")
	}
	if _, err := RunSharded(arr, ShardedOptions{
		JoinOptions: JoinOptions{WindowR: 4, WindowS: 4, Backend: BChain},
	}); err == nil {
		t.Fatal("chained backend accepted by sharded runtime")
	}
	// Self-join needs only one window.
	if _, err := RunSharded(arr, ShardedOptions{
		JoinOptions: JoinOptions{WindowR: 4, Self: true},
		Shards:      2,
	}); err != nil {
		t.Fatalf("self-join rejected: %v", err)
	}
}

// TestRunShardedPartitionerHook checks that a custom Partitioner is honored
// and that QuantilePartition balances a skewed workload across shards while
// preserving the serial match multiset.
func TestRunShardedPartitionerHook(t *testing.T) {
	const (
		n    = 8000
		w    = 128
		seed = 777
	)
	src := GaussianSource(seed, 0.5, 0.125)
	arr := Interleave(seed+1, GaussianSource(seed+2, 0.5, 0.125), GaussianSource(seed+3, 0.5, 0.125), 0.5, n)
	sample := make([]uint32, 4096)
	for i := range sample {
		sample[i] = src.Next()
	}
	diff := CalibrateDiff(func(s int64) KeySource { return GaussianSource(s, 0.5, 0.125) }, w, 2)

	opts := JoinOptions{WindowR: w, WindowS: w, Diff: diff, Backend: PIMTree}
	want := collectSerial(t, arr, opts)
	sortMatches(want)

	part := QuantilePartition(sample, 4)
	if part.Shards() != 4 {
		t.Fatalf("quantile partitioner collapsed to %d shards", part.Shards())
	}
	var mu sync.Mutex
	var got []Match
	opts.OnMatch = func(m Match) {
		mu.Lock()
		got = append(got, m)
		mu.Unlock()
	}
	st, err := RunSharded(arr, ShardedOptions{JoinOptions: opts, Partitioner: part, BatchSize: 16})
	if err != nil {
		t.Fatal(err)
	}
	sortMatches(got)
	if len(got) != len(want) {
		t.Fatalf("matches = %d, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("match %d differs: %+v vs %+v", i, got[i], want[i])
		}
	}
	if st.Tuples != n {
		t.Fatalf("Tuples = %d, want %d", st.Tuples, n)
	}
}
