package pimtree

import (
	"bytes"
	"strings"
	"testing"
)

func TestReadArrivalsCSV(t *testing.T) {
	in := strings.NewReader("# comment\nR,10\n\nS,20\n0,30\n1,40\n r , 50 \n")
	got, err := ReadArrivalsCSV(in)
	if err != nil {
		t.Fatal(err)
	}
	want := []Arrival{
		{Stream: R, Key: 10}, {Stream: S, Key: 20}, {Stream: R, Key: 30},
		{Stream: S, Key: 40}, {Stream: R, Key: 50},
	}
	if len(got) != len(want) {
		t.Fatalf("parsed %d arrivals, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("arrival %d = %+v, want %+v", i, got[i], want[i])
		}
	}
}

func TestReadArrivalsCSVErrors(t *testing.T) {
	for _, in := range []string{"R\n", "X,5\n", "R,notakey\n", "R,99999999999\n"} {
		if _, err := ReadArrivalsCSV(strings.NewReader(in)); err == nil {
			t.Fatalf("input %q accepted", in)
		}
	}
}

func TestCSVRoundTrip(t *testing.T) {
	orig := Interleave(5, UniformSource(1), UniformSource(2), 0.5, 500)
	var buf bytes.Buffer
	if err := WriteArrivalsCSV(&buf, orig); err != nil {
		t.Fatal(err)
	}
	back, err := ReadArrivalsCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(orig) {
		t.Fatalf("round trip length %d vs %d", len(back), len(orig))
	}
	for i := range orig {
		if back[i] != orig[i] {
			t.Fatalf("arrival %d changed: %+v vs %+v", i, back[i], orig[i])
		}
	}
}

func TestCSVTraceDrivesJoin(t *testing.T) {
	arr := Interleave(7, UniformSource(3), UniformSource(4), 0.5, 2000)
	var buf bytes.Buffer
	if err := WriteArrivalsCSV(&buf, arr); err != nil {
		t.Fatal(err)
	}
	replay, err := ReadArrivalsCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	diff := DiffForMatchRate(128, 2)
	run := func(in []Arrival) uint64 {
		j, _ := NewJoin(JoinOptions{WindowR: 128, WindowS: 128, Diff: diff, Backend: PIMTree})
		for _, a := range in {
			j.Push(a.Stream, a.Key)
		}
		return j.Matches()
	}
	if run(arr) != run(replay) {
		t.Fatal("replayed trace produced different results")
	}
}
