package pimtree

import (
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// mdLinkRe matches inline markdown links/images: [text](target).
var mdLinkRe = regexp.MustCompile(`\]\(([^)\s]+)\)`)

// TestDocsLinks keeps the documentation cross-references from rotting: every
// relative link in the repository's markdown (README, docs/OPERATIONS,
// docs/TUNING, docs/ARCHITECTURE, ...) must point at a file or directory
// that exists. External URLs, pure anchors, and links escaping the
// repository root (GitHub UI paths like ../../actions/...) are skipped. CI
// runs this as its docs-link checker step.
func TestDocsLinks(t *testing.T) {
	root, err := os.Getwd() // the package dir is the repository root
	if err != nil {
		t.Fatal(err)
	}
	var files []string
	for _, glob := range []string{"*.md", "docs/*.md"} {
		m, err := filepath.Glob(filepath.Join(root, glob))
		if err != nil {
			t.Fatal(err)
		}
		files = append(files, m...)
	}
	if len(files) < 5 {
		t.Fatalf("found only %d markdown files — glob broken?", len(files))
	}
	checked := 0
	for _, f := range files {
		data, err := os.ReadFile(f)
		if err != nil {
			t.Fatal(err)
		}
		for _, m := range mdLinkRe.FindAllStringSubmatch(string(data), -1) {
			target := m[1]
			if strings.HasPrefix(target, "http://") || strings.HasPrefix(target, "https://") ||
				strings.HasPrefix(target, "mailto:") || strings.HasPrefix(target, "#") {
				continue
			}
			target, _, _ = strings.Cut(target, "#") // drop anchors
			if target == "" {
				continue
			}
			resolved := filepath.Clean(filepath.Join(filepath.Dir(f), target))
			if rel, err := filepath.Rel(root, resolved); err != nil || strings.HasPrefix(rel, "..") {
				continue // outside the repository (e.g. GitHub UI paths)
			}
			checked++
			if _, err := os.Stat(resolved); err != nil {
				rel, _ := filepath.Rel(root, f)
				t.Errorf("%s: broken link %q (resolved %s)", rel, m[1], resolved)
			}
		}
	}
	if checked == 0 {
		t.Fatal("no relative links checked — extraction broken?")
	}
	t.Logf("checked %d relative links across %d markdown files", checked, len(files))
}
