package pimtree

import (
	"fmt"

	"pimtree/internal/ooo"
)

// LatePolicy selects how the time-based joins treat tuples that arrive later
// than Slack allows — their event time is already below the watermark
// (largest observed timestamp minus Slack), so admitting them as-is would
// regress the join's clock. Any policy other than LateNone switches the
// ingestion path into buffered out-of-order mode: arrivals are held in a
// bounded reorder buffer and admitted in timestamp order once the watermark
// passes them. For any input whose disorder stays within Slack, the admitted
// sequence is exactly the stable timestamp sort of the input and no tuple is
// late.
type LatePolicy uint8

const (
	// LateNone keeps the strict contract: the caller guarantees
	// timestamp-ordered input and no reorder buffering happens. This is the
	// zero value and the pre-existing behavior of the time-based APIs.
	LateNone LatePolicy = iota
	// LateDrop discards tuples later than Slack (counted by LateDropped).
	LateDrop
	// LateEmit admits late tuples immediately with their effective event
	// time clamped to the watermark, preserving ordered admission.
	LateEmit
	// LateCall hands late tuples to OnLate without joining them; they count
	// toward LateDropped. Requires OnLate.
	LateCall
)

// String names the policy.
func (p LatePolicy) String() string {
	switch p {
	case LateNone:
		return "none"
	case LateDrop:
		return "drop"
	case LateEmit:
		return "emit"
	case LateCall:
		return "call"
	default:
		return "unknown"
	}
}

// oooPolicy maps the public policy onto the reorder buffer's.
func (p LatePolicy) oooPolicy() ooo.Policy {
	switch p {
	case LateEmit:
		return ooo.Emit
	case LateCall:
		return ooo.Call
	default:
		return ooo.Drop
	}
}

// validateLate checks the out-of-order knobs shared by the three time-based
// runtimes.
func validateLate(p LatePolicy, slack uint64, onLate func(TimedArrival, uint64)) error {
	switch p {
	case LateNone:
		if slack > 0 {
			return fmt.Errorf("pimtree: Slack requires a LatePolicy (LateDrop, LateEmit, or LateCall)")
		}
	case LateDrop, LateEmit:
		// OnLate is an optional diagnostic tap here.
	case LateCall:
		if onLate == nil {
			return fmt.Errorf("pimtree: LateCall requires OnLate")
		}
	default:
		return fmt.Errorf("pimtree: unknown LatePolicy %d", p)
	}
	return nil
}

// timedSorted reports whether the arrival sequence is timestamp-ordered.
func timedSorted(arrivals []TimedArrival) bool {
	for i := 1; i < len(arrivals); i++ {
		if arrivals[i].TS < arrivals[i-1].TS {
			return false
		}
	}
	return true
}

// oooLateAdapter converts a public OnLate callback to the reorder buffer's.
func oooLateAdapter(onLate func(TimedArrival, uint64)) func(ooo.Tuple, uint64) {
	if onLate == nil {
		return nil
	}
	return func(t ooo.Tuple, lateness uint64) {
		onLate(TimedArrival{Stream: StreamID(t.Stream), Key: t.Key, TS: t.TS}, lateness)
	}
}

// reorderTimed runs a whole arrival slice through the reorder buffer and
// returns the admitted (timestamp-ordered) sequence plus the late/disorder
// accounting — the batch pre-pass behind RunParallelTime's buffered mode.
func reorderTimed(arrivals []TimedArrival, slack uint64, p LatePolicy, onLate func(TimedArrival, uint64)) (out []TimedArrival, lateDropped, maxDisorder uint64) {
	r := ooo.New(slack, p.oooPolicy(), oooLateAdapter(onLate))
	out = make([]TimedArrival, 0, len(arrivals))
	emit := func(t ooo.Tuple) {
		out = append(out, TimedArrival{Stream: StreamID(t.Stream), Key: t.Key, TS: t.TS})
	}
	for _, a := range arrivals {
		r.Push(ooo.Tuple{Stream: uint8(a.Stream), Key: a.Key, TS: a.TS}, emit)
	}
	r.Flush(emit)
	return out, r.LateDropped(), r.MaxDisorder()
}

// ShardedTimeOptions configures the key-range sharded time-window band join
// — the time-based counterpart of RunSharded, with out-of-order admission at
// the router.
type ShardedTimeOptions struct {
	// Shards is the number of key-range shards (default GOMAXPROCS).
	// Ignored when Partitioner is set.
	Shards int
	// BatchSize is the number of routed operations a shard accumulates
	// before its queue is flushed (default 64).
	BatchSize int
	Span      uint64 // window duration in timestamp units (required)
	// MaxLive is an upper bound on simultaneously live tuples per window
	// (required), as in ParallelTimeOptions: it sizes the per-shard stores.
	MaxLive int
	Self    bool
	Diff    uint32
	// Backend selects the per-shard index (chained backends unsupported,
	// as in RunSharded).
	Backend Backend
	Index   IndexOptions
	// Slack, LatePolicy, and OnLate configure out-of-order admission: any
	// policy other than LateNone lets the router accept event-time disorder
	// up to Slack (see LatePolicy). With LateNone the input must be
	// timestamp-ordered.
	Slack      uint64
	LatePolicy LatePolicy
	OnLate     func(t TimedArrival, lateness uint64)
	// OnMatch observes matches in admission order.
	OnMatch func(Match)
	// Partitioner overrides the default equal-width key ranges.
	Partitioner Partitioner
}

// RunShardedTime executes the key-range sharded time-window band join over a
// batch of timed arrivals — a compatibility wrapper over Engine in
// ModeShardedTime: the router reorders event-time disorder within Slack (per
// LatePolicy), routes each admitted tuple's probe to every shard whose range
// intersects [key-Diff, key+Diff] and its insert to the key's owner shard,
// and the order-preserving merge stage re-sequences matches into admission
// order. For any input with disorder within Slack it produces the identical
// match multiset as pushing the timestamp-sorted input through the serial
// TimeJoin.
func RunShardedTime(arrivals []TimedArrival, o ShardedTimeOptions) (RunStats, error) {
	in := make([]Arrival, len(arrivals))
	for i, a := range arrivals {
		in[i] = Arrival{Stream: a.Stream, Key: a.Key, TS: a.TS}
	}
	return runBatch(Config{
		Mode:           ModeShardedTime,
		Span:           o.Span,
		MaxLive:        o.MaxLive,
		Self:           o.Self,
		Diff:           o.Diff,
		Backend:        o.Backend,
		Index:          o.Index,
		Shards:         o.Shards,
		BatchSize:      o.BatchSize,
		Partitioner:    o.Partitioner,
		Slack:          o.Slack,
		LatePolicy:     o.LatePolicy,
		OnLate:         o.OnLate,
		OnMatch:        o.OnMatch,
		DiscardMatches: o.OnMatch == nil,
	}, in)
}
