//go:build race

package pimtree_test

// raceEnabled relaxes the exact zero-allocation assertions under the race
// detector, whose instrumentation allocates; the pinned paths still run.
const raceEnabled = true
