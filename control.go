package pimtree

import (
	"fmt"
	"time"

	"pimtree/internal/shard"
)

// Delta describes a live reconfiguration applied by Engine.Reconfigure.
// Zero (or nil) fields keep the current value, so the zero Delta is a no-op.
type Delta struct {
	// Shards is the target shard count. Changing it is a full reshape
	// epoch: the engine quiesces at a drain barrier, spawns a fresh shard
	// set, migrates the live window contents into it, and retires the old
	// one — the match multiset is unaffected. Under heavy key skew the
	// effective count can collapse below the request (quantile boundaries
	// may coincide).
	Shards int
	// BatchSize swaps the routed-ops-per-batch bound.
	BatchSize int
	// QueueCapacity swaps the in-flight ring bound (the backpressure
	// horizon).
	QueueCapacity int
	// Rebalance, when non-nil, enables adaptive shard rebalancing with the
	// given policy (replacing the current policy if it was already on).
	// ModeSharded only — the timed runtime rejects it with the same error
	// as Open.
	Rebalance *RebalancePolicy
}

// zero reports whether the delta requests no change at all.
func (d Delta) zero() bool {
	return d.Shards == 0 && d.BatchSize == 0 && d.QueueCapacity == 0 && d.Rebalance == nil
}

// Reconfigure applies a live configuration delta to a running sharded
// engine. It validates the merged configuration through the same path as
// Open (invalid deltas fail with the identical errors), waits for the
// producer to reach a safe point, and applies the change at a drain-barrier
// epoch: no tuple is lost, no match is duplicated, and the producer's next
// push proceeds under the new configuration. Safe from any goroutine;
// concurrent calls serialize. Engines in the serial or shared modes return
// an error wrapping ErrNotTunable; closed engines return ErrClosed.
func (e *Engine) Reconfigure(d Delta) error {
	if e.mode != ModeSharded && e.mode != ModeShardedTime {
		return fmt.Errorf("pimtree: %s %w", e.mode, ErrNotTunable)
	}
	if d.Shards < 0 || d.BatchSize < 0 || d.QueueCapacity < 0 {
		return fmt.Errorf("pimtree: negative Reconfigure delta (shards %d, batch %d, capacity %d)",
			d.Shards, d.BatchSize, d.QueueCapacity)
	}
	if err := e.pushable(); err != nil {
		return err
	}
	if err := e.lockProducer(); err != nil {
		return err
	}
	defer e.prodMu.Unlock()
	if d.zero() {
		return nil
	}
	merged := e.cfg
	if d.Shards > 0 {
		merged.Shards = d.Shards
	}
	if d.BatchSize > 0 {
		merged.BatchSize = d.BatchSize
	}
	if d.QueueCapacity > 0 {
		merged.QueueCapacity = d.QueueCapacity
	}
	if d.Rebalance != nil {
		merged.Adaptive = true
		merged.Rebalance = *d.Rebalance
	}
	if _, err := merged.validate(); err != nil {
		return err
	}
	q := shard.Reshape{Shards: d.Shards, BatchSize: d.BatchSize, Capacity: d.QueueCapacity}
	if d.Rebalance != nil {
		q.Policy = &shard.Policy{
			MaxRatio:   d.Rebalance.MaxRatio,
			MinGap:     d.Rebalance.MinGap,
			SampleSize: d.Rebalance.SampleSize,
			ForceEvery: d.Rebalance.ForceEvery,
		}
	}
	e.router.Reshape(q)
	e.tunMu.Lock()
	e.cfg = merged
	e.tunMu.Unlock()
	e.reconfigs.Add(1)
	return nil
}

// Tuning is a point-in-time snapshot of the engine's live-tunable state,
// returned by Engine.Tuning and served by the /tuning admin endpoint.
type Tuning struct {
	// Mode is the resolved execution mode (never ModeAuto).
	Mode Mode
	// Shards is the live shard count — reshape epochs change it, and key
	// skew can hold it below the last requested value. Zero outside the
	// sharded modes.
	Shards int
	// BatchSize and QueueCapacity are the currently applied values
	// (defaults resolved).
	BatchSize     int
	QueueCapacity int
	// Adaptive reports whether shard rebalancing is live; Rebalance is its
	// policy as last configured.
	Adaptive  bool
	Rebalance RebalancePolicy
	// AutoTune reports whether the feedback controller is running.
	AutoTune bool
	// Reconfigures counts applied Reconfigure deltas (manual and
	// controller-driven); Reshapes counts the underlying shard-layer
	// epochs; Decisions counts controller decisions applied.
	Reconfigures int
	Reshapes     int
	Decisions    int
	// LastDecision describes the controller's most recent applied decision
	// ("" before the first).
	LastDecision string
}

// Tuning returns the live-tunable state snapshot. Safe from any goroutine.
func (e *Engine) Tuning() Tuning {
	e.tunMu.Lock()
	cfg := e.cfg
	e.tunMu.Unlock()
	t := Tuning{
		Mode:          e.mode,
		BatchSize:     cfg.BatchSize,
		QueueCapacity: cfg.QueueCapacity,
		Adaptive:      cfg.Adaptive,
		Rebalance:     cfg.Rebalance,
		AutoTune:      cfg.AutoTune,
		Reconfigures:  int(e.reconfigs.Load()),
		Decisions:     int(e.decisions.Load()),
	}
	if t.BatchSize <= 0 {
		t.BatchSize = 64
	}
	if t.QueueCapacity <= 0 {
		if e.mode == ModeShared {
			t.QueueCapacity = 8 << 10
		} else {
			t.QueueCapacity = 1 << 14
		}
	}
	if e.router != nil {
		t.Shards = e.router.Shards()
		t.Reshapes = e.router.Reshapes()
	}
	if e.tuner != nil {
		t.LastDecision = e.tuner.lastDecision()
	}
	return t
}

// TunePolicy adjusts the AutoTune feedback controller. The zero value
// selects defaults; see docs/TUNING.md for the control loop.
type TunePolicy struct {
	// Interval is the controller's sampling period (default 250ms).
	Interval time.Duration
	// Streak is how many consecutive breaching samples a pressure signal
	// needs before the controller acts (default 3); Cooldown is the minimum
	// number of samples between applied decisions (default 8).
	Streak   int
	Cooldown int
	// QueueHigh is the queue-depth pressure threshold in batches
	// (default 3); ImbalanceHigh is the load-imbalance ratio above which
	// the controller enables adaptive rebalancing (default 1.4).
	QueueHigh     uint64
	ImbalanceHigh float64
	// MinShards and MaxShards bound the controller's shard-count steps
	// (defaults 1 and 4x the starting count).
	MinShards int
	MaxShards int
}
