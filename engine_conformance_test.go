// Engine conformance suite: every Mode × backend combination must produce
// the exact match multiset of the serial Join on the same input, no matter
// how the input is pushed — one tuple at a time, in random batch sizes, or
// with a mid-stream Drain — and with Stats polled concurrently (the suite is
// meant to run under -race).
package pimtree_test

import (
	"context"
	"math/rand"
	"runtime"
	"sort"
	"sync"
	"testing"
	"time"

	"pimtree"
)

// matchKey is a comparable flattening of a Match for multiset comparison.
type matchKey struct {
	stream pimtree.StreamID
	probe  uint64
	match  uint64
}

func sortedMatches(ms []matchKey) []matchKey {
	sort.Slice(ms, func(i, j int) bool {
		a, b := ms[i], ms[j]
		if a.stream != b.stream {
			return a.stream < b.stream
		}
		if a.probe != b.probe {
			return a.probe < b.probe
		}
		return a.match < b.match
	})
	return ms
}

func collectMatches(dst *[]matchKey) func(pimtree.Match) {
	return func(m pimtree.Match) {
		*dst = append(*dst, matchKey{m.ProbeStream, m.ProbeSeq, m.MatchSeq})
	}
}

// serialOracle plays the arrivals through the serial Join and returns the
// match multiset plus the cumulative match count after every arrival.
func serialOracle(t *testing.T, arr []pimtree.Arrival, w int, diff uint32) (ms []matchKey, cum []uint64) {
	t.Helper()
	j, err := pimtree.NewJoin(pimtree.JoinOptions{
		WindowR: w, WindowS: w, Diff: diff, Backend: pimtree.PIMTree,
		OnMatch: collectMatches(&ms),
	})
	if err != nil {
		t.Fatal(err)
	}
	cum = make([]uint64, len(arr))
	for i, a := range arr {
		j.Push(a.Stream, a.Key)
		cum[i] = j.Matches()
	}
	sortedMatches(ms)
	return ms, cum
}

// pollStats hammers Stats from another goroutine until stop is closed —
// the -race observability check for live mid-stream snapshots.
func pollStats(e *pimtree.Engine, stop chan struct{}, wg *sync.WaitGroup) {
	wg.Add(1)
	go func() {
		defer wg.Done()
		var last uint64
		for {
			select {
			case <-stop:
				return
			default:
			}
			st := e.Stats()
			if st.Matches < last {
				panic("Stats().Matches went backwards")
			}
			last = st.Matches
			// Busy-polling a 1-core box would starve the engine under test.
			runtime.Gosched()
		}
	}()
}

func engineCombos(short bool) []struct {
	name string
	cfg  pimtree.Config
} {
	w := 256
	var combos []struct {
		name string
		cfg  pimtree.Config
	}
	add := func(name string, cfg pimtree.Config) {
		cfg.WindowR, cfg.WindowS = w, w
		combos = append(combos, struct {
			name string
			cfg  pimtree.Config
		}{name, cfg})
	}
	serialBackends := []pimtree.Backend{
		pimtree.PIMTree, pimtree.IMTree, pimtree.BPlusTree,
		pimtree.BwTree, pimtree.BChain, pimtree.IBChain,
	}
	for _, b := range serialBackends {
		add("serial/"+b.String(), pimtree.Config{Mode: pimtree.ModeSerial, Backend: b})
	}
	// Shared mode: windows must exceed 2x the in-flight bound for the
	// Bw-Tree's eager deletes (threads*task+64).
	for _, b := range []pimtree.Backend{pimtree.PIMTree, pimtree.BwTree} {
		add("shared/"+b.String(), pimtree.Config{
			Mode: pimtree.ModeShared, Backend: b, Threads: 3, TaskSize: 4,
		})
	}
	shardedBackends := []pimtree.Backend{pimtree.PIMTree, pimtree.IMTree, pimtree.BPlusTree, pimtree.BwTree}
	if short {
		shardedBackends = []pimtree.Backend{pimtree.PIMTree, pimtree.BwTree}
	}
	for _, b := range shardedBackends {
		add("sharded/"+b.String(), pimtree.Config{
			Mode: pimtree.ModeSharded, Backend: b, Shards: 3, BatchSize: 16,
		})
	}
	return combos
}

func TestEngineConformance(t *testing.T) {
	const w = 256
	n := 6000
	if testing.Short() {
		n = 2500
	}
	diff := pimtree.DiffForMatchRate(w, 2)
	arr := pimtree.Interleave(11, pimtree.UniformSource(12), pimtree.UniformSource(13), 0.5, n)
	want, cum := serialOracle(t, arr, w, diff)

	for _, combo := range engineCombos(testing.Short()) {
		for _, gran := range []string{"one-by-one", "random-batches"} {
			t.Run(combo.name+"/"+gran, func(t *testing.T) {
				var got []matchKey
				var mu sync.Mutex
				cfg := combo.cfg
				cfg.Diff = diff
				cfg.OnMatch = func(m pimtree.Match) {
					mu.Lock()
					got = append(got, matchKey{m.ProbeStream, m.ProbeSeq, m.MatchSeq})
					mu.Unlock()
				}
				e, err := pimtree.Open(cfg)
				if err != nil {
					t.Fatal(err)
				}
				stop := make(chan struct{})
				var wg sync.WaitGroup
				pollStats(e, stop, &wg)

				half := len(arr) / 2
				switch gran {
				case "one-by-one":
					for i, a := range arr {
						if err := e.Push(a.Stream, a.Key); err != nil {
							t.Fatal(err)
						}
						if i == half-1 {
							if err := e.Drain(context.Background()); err != nil {
								t.Fatal(err)
							}
							// Drain is deterministic: everything pushed so
							// far has been propagated.
							if m := e.Stats().Matches; m != cum[i] {
								t.Fatalf("after mid-stream Drain at %d: %d matches, oracle %d", i+1, m, cum[i])
							}
						}
					}
				case "random-batches":
					rng := rand.New(rand.NewSource(99))
					for lo := 0; lo < len(arr); {
						hi := lo + 1 + rng.Intn(97)
						if hi > len(arr) {
							hi = len(arr)
						}
						if err := e.PushBatch(arr[lo:hi]); err != nil {
							t.Fatal(err)
						}
						lo = hi
					}
				}
				st, err := e.Close(context.Background())
				close(stop)
				wg.Wait()
				if err != nil {
					t.Fatal(err)
				}
				if st.Tuples != len(arr) {
					t.Fatalf("Tuples = %d, want %d", st.Tuples, len(arr))
				}
				if st.Matches != uint64(len(want)) {
					t.Fatalf("Matches = %d, want %d", st.Matches, len(want))
				}
				sortedMatches(got)
				if len(got) != len(want) {
					t.Fatalf("match multiset size %d, want %d", len(got), len(want))
				}
				for i := range want {
					if got[i] != want[i] {
						t.Fatalf("match %d = %+v, want %+v", i, got[i], want[i])
					}
				}
			})
		}
	}
}

func TestEngineShardedTimeConformance(t *testing.T) {
	const (
		span    = 1 << 12
		slack   = 1 << 7
		maxLive = 1 << 11
	)
	n := 6000
	if testing.Short() {
		n = 2500
	}
	diff := uint32(1 << 10)
	sorted := pimtree.TimestampArrivals(21,
		pimtree.Interleave(22, pimtree.UniformSource(23), pimtree.UniformSource(24), 0.5, n), 3)
	shuffled := pimtree.ShuffleWithinSlack(25, sorted, slack)

	// Oracle: serial TimeJoin over the sorted sequence.
	var want []matchKey
	oracle, err := pimtree.NewTimeJoin(pimtree.TimeJoinOptions{
		Span: span, Diff: diff, OnMatch: collectMatches(&want),
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, a := range sorted {
		oracle.Push(a.Stream, a.Key, a.TS)
	}
	sortedMatches(want)

	for _, gran := range []string{"one-by-one", "random-batches"} {
		t.Run(gran, func(t *testing.T) {
			var got []matchKey
			var mu sync.Mutex
			e, err := pimtree.Open(pimtree.Config{
				Mode: pimtree.ModeShardedTime, Span: span, MaxLive: maxLive,
				Diff: diff, Shards: 3, Slack: slack, LatePolicy: pimtree.LateDrop,
				OnMatch: func(m pimtree.Match) {
					mu.Lock()
					got = append(got, matchKey{m.ProbeStream, m.ProbeSeq, m.MatchSeq})
					mu.Unlock()
				},
			})
			if err != nil {
				t.Fatal(err)
			}
			stop := make(chan struct{})
			var wg sync.WaitGroup
			pollStats(e, stop, &wg)

			switch gran {
			case "one-by-one":
				// No mid-stream Drain here: draining flushes the reorder
				// buffer and advances the watermark past it, which would
				// (by design) make the rest of the shuffled input late.
				for _, a := range shuffled {
					if err := e.PushTimed(a.Stream, a.Key, a.TS); err != nil {
						t.Fatal(err)
					}
				}
			case "random-batches":
				batch := make([]pimtree.Arrival, 0, 128)
				rng := rand.New(rand.NewSource(7))
				for lo := 0; lo < len(shuffled); {
					hi := lo + 1 + rng.Intn(97)
					if hi > len(shuffled) {
						hi = len(shuffled)
					}
					batch = batch[:0]
					for _, a := range shuffled[lo:hi] {
						batch = append(batch, pimtree.Arrival{Stream: a.Stream, Key: a.Key, TS: a.TS})
					}
					if err := e.PushBatch(batch); err != nil {
						t.Fatal(err)
					}
					lo = hi
				}
			}
			st, err := e.Close(context.Background())
			close(stop)
			wg.Wait()
			if err != nil {
				t.Fatal(err)
			}
			if st.LateDropped != 0 {
				t.Fatalf("LateDropped = %d with slack covering the disorder", st.LateDropped)
			}
			if st.MaxObservedDisorder == 0 {
				t.Fatal("MaxObservedDisorder = 0 over a shuffled stream")
			}
			sortedMatches(got)
			if len(got) != len(want) {
				t.Fatalf("match multiset size %d, want %d", len(got), len(want))
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("match %d = %+v, want %+v", i, got[i], want[i])
				}
			}
		})
	}
}

// TestEngineMatchesIterator exercises the pull side: a consumer goroutine
// ranging over Matches observes exactly the multiset OnMatch would, and the
// iterator terminates once the engine closes.
func TestEngineMatchesIterator(t *testing.T) {
	const w = 256
	diff := pimtree.DiffForMatchRate(w, 2)
	arr := pimtree.Interleave(31, pimtree.UniformSource(32), pimtree.UniformSource(33), 0.5, 3000)
	want, _ := serialOracle(t, arr, w, diff)

	e, err := pimtree.Open(pimtree.Config{
		Mode: pimtree.ModeSharded, WindowR: w, WindowS: w, Diff: diff, Shards: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	var got []matchKey
	done := make(chan struct{})
	// Arm the pull side before the first push so nothing is missed.
	seq := e.Matches()
	go func() {
		defer close(done)
		for m := range seq {
			got = append(got, matchKey{m.ProbeStream, m.ProbeSeq, m.MatchSeq})
		}
	}()
	if err := e.PushBatch(arr); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Close(context.Background()); err != nil {
		t.Fatal(err)
	}
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("Matches iterator did not terminate after Close")
	}
	sortedMatches(got)
	if len(got) != len(want) {
		t.Fatalf("pulled %d matches, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("match %d = %+v, want %+v", i, got[i], want[i])
		}
	}
}

// TestEngineMatchesBreakDisarms: breaking out of the pull iterator stops
// collection (an abandoned iterator must not buffer forever) and a later
// Matches call re-arms from that point.
func TestEngineMatchesBreakDisarms(t *testing.T) {
	e, err := pimtree.Open(pimtree.Config{
		Mode: pimtree.ModeSerial, WindowR: 8, WindowS: 8, Diff: 0,
	})
	if err != nil {
		t.Fatal(err)
	}
	first := e.Matches()
	e.Push(pimtree.R, 1)
	e.Push(pimtree.S, 1) // match #1
	got := 0
	for range first {
		got++
		break // disarms
	}
	if got != 1 {
		t.Fatalf("pulled %d before break, want 1", got)
	}
	e.Push(pimtree.R, 2)
	e.Push(pimtree.S, 2) // match while disarmed: dropped, not buffered
	second := e.Matches()
	e.Push(pimtree.R, 3)
	e.Push(pimtree.S, 3) // match #3, collected by the re-armed queue
	if _, err := e.Close(context.Background()); err != nil {
		t.Fatal(err)
	}
	var seqs []uint64
	for m := range second {
		seqs = append(seqs, m.ProbeSeq)
	}
	if len(seqs) != 1 || seqs[0] != 2 {
		t.Fatalf("re-armed iterator saw %v, want just the S-seq-2 match", seqs)
	}
}

// TestEngineSerialPullAfterClose: the serial engine shares the producer
// goroutine with the consumer; the unbounded pull queue makes
// push-everything-then-range work without a second goroutine.
func TestEngineSerialPullAfterClose(t *testing.T) {
	e, err := pimtree.Open(pimtree.Config{
		Mode: pimtree.ModeSerial, WindowR: 8, WindowS: 8, Diff: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	seq := e.Matches() // arm before pushing
	e.Push(pimtree.R, 10)
	e.Push(pimtree.S, 11) // pairs with R:10
	e.Push(pimtree.S, 40)
	if _, err := e.Close(context.Background()); err != nil {
		t.Fatal(err)
	}
	var got []pimtree.Match
	for m := range seq {
		got = append(got, m)
	}
	if len(got) != 1 || got[0].ProbeStream != pimtree.S || got[0].MatchSeq != 0 {
		t.Fatalf("pulled %+v, want the single S->R match", got)
	}
}

// TestEngineBackpressure pins the bounded-queue behavior: a tiny
// QueueCapacity forces the producer through the blocking path and the run
// still completes with the exact multiset.
func TestEngineBackpressure(t *testing.T) {
	const w = 256
	diff := pimtree.DiffForMatchRate(w, 2)
	arr := pimtree.Interleave(41, pimtree.UniformSource(42), pimtree.UniformSource(43), 0.5, 2000)
	want, _ := serialOracle(t, arr, w, diff)

	for _, mode := range []pimtree.Mode{pimtree.ModeShared, pimtree.ModeSharded} {
		t.Run(mode.String(), func(t *testing.T) {
			var got []matchKey
			var mu sync.Mutex
			e, err := pimtree.Open(pimtree.Config{
				Mode: mode, WindowR: w, WindowS: w, Diff: diff,
				Threads: 2, Shards: 2, QueueCapacity: 8,
				OnMatch: func(m pimtree.Match) {
					mu.Lock()
					got = append(got, matchKey{m.ProbeStream, m.ProbeSeq, m.MatchSeq})
					mu.Unlock()
				},
			})
			if err != nil {
				t.Fatal(err)
			}
			if err := e.PushBatch(arr); err != nil {
				t.Fatal(err)
			}
			st, err := e.Close(context.Background())
			if err != nil {
				t.Fatal(err)
			}
			if st.Matches != uint64(len(want)) {
				t.Fatalf("Matches = %d, want %d", st.Matches, len(want))
			}
			sortedMatches(got)
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("match %d = %+v, want %+v", i, got[i], want[i])
				}
			}
		})
	}
}

// TestEngineDurableCloseReopen is the lifecycle conformance point for the
// durability layer on the real filesystem: closing a durable engine and
// reopening the same Config on the same directory must yield a session that
// behaves exactly as if the first session's input had been pushed into it —
// its matches are the serial oracle's matches whose probe falls in the
// second half of the stream, with the global sequence numbering continued.
func TestEngineDurableCloseReopen(t *testing.T) {
	const w = 256
	n := 4000
	if testing.Short() {
		n = 2000
	}
	diff := pimtree.DiffForMatchRate(w, 2)
	arr := pimtree.Interleave(29, pimtree.UniformSource(31), pimtree.UniformSource(37), 0.5, n)
	full, _ := serialOracle(t, arr, w, diff)
	half := n / 2
	firstHalf, _ := serialOracle(t, arr[:half], w, diff)
	var n1 [2]uint64 // per-stream tuple counts of the first half
	for _, a := range arr[:half] {
		n1[a.Stream]++
	}

	dir := t.TempDir()
	cfg := pimtree.Config{
		Mode: pimtree.ModeSharded, Backend: pimtree.PIMTree,
		WindowR: w, WindowS: w, Diff: diff,
		Shards: 3, BatchSize: 16,
		Durability: pimtree.Durability{Dir: dir, FsyncEvery: 16, SnapshotEvery: 512},
	}

	var msA []matchKey
	var muA sync.Mutex
	cfgA := cfg
	cfgA.OnMatch = func(m pimtree.Match) {
		muA.Lock()
		msA = append(msA, matchKey{m.ProbeStream, m.ProbeSeq, m.MatchSeq})
		muA.Unlock()
	}
	a, err := pimtree.Open(cfgA)
	if err != nil {
		t.Fatal(err)
	}
	if err := a.PushBatch(arr[:half]); err != nil {
		t.Fatal(err)
	}
	if _, err := a.Close(context.Background()); err != nil {
		t.Fatal(err)
	}
	if got, want := sortedMatches(msA), firstHalf; len(got) != len(want) {
		t.Fatalf("session A emitted %d matches, oracle %d", len(got), len(want))
	} else {
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("session A match %d = %+v, want %+v", i, got[i], want[i])
			}
		}
	}

	var msB []matchKey
	var muB sync.Mutex
	cfgB := cfg
	cfgB.OnMatch = func(m pimtree.Match) {
		muB.Lock()
		msB = append(msB, matchKey{m.ProbeStream, m.ProbeSeq, m.MatchSeq})
		muB.Unlock()
	}
	b, err := pimtree.Open(cfgB)
	if err != nil {
		t.Fatal(err)
	}
	ws := b.WALStats()
	if !ws.Enabled || ws.ReplayRecords == 0 {
		t.Fatalf("session B recovered nothing: %+v", ws)
	}
	if err := b.PushBatch(arr[half:]); err != nil {
		t.Fatal(err)
	}
	if _, err := b.Close(context.Background()); err != nil {
		t.Fatal(err)
	}

	var want []matchKey
	for _, m := range full {
		if m.probe >= n1[m.stream] {
			want = append(want, m)
		}
	}
	got := sortedMatches(msB)
	want = sortedMatches(want)
	if len(got) != len(want) {
		t.Fatalf("session B emitted %d matches, oracle's second-half probes have %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("session B match %d = %+v, want %+v", i, got[i], want[i])
		}
	}
}
