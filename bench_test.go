// Benchmarks: one testing.B target per figure of the paper's evaluation
// (Figures 8a–14) plus the repository's ablations. Each benchmark runs a
// single representative configuration of the figure's sweep at a size that
// keeps `go test -bench=.` tractable; the full sweeps (the actual figure
// series) are produced by cmd/pimbench (see README.md).
//
// Throughput is additionally reported as Mtps (million tuples per second),
// the unit used by every figure.
package pimtree_test

import (
	"testing"

	"pimtree/internal/bench"
	"pimtree/internal/core"
	"pimtree/internal/join"
	"pimtree/internal/kv"
	"pimtree/internal/metrics"
	"pimtree/internal/stream"
)

const benchWindow = 1 << 13

func benchArrivals(n int) []stream.Arrival {
	return stream.NewInterleaver(1, stream.NewUniform(2), stream.NewUniform(3), 0.5).Take(n)
}

func benchSelf(n int) []stream.Arrival {
	return stream.NewSelfStream(stream.NewUniform(2)).Take(n)
}

func band(w int) join.Band { return join.Band{Diff: stream.UniformDiff(w, 2)} }

func tuples(b *testing.B) int {
	n := b.N
	if n < 1<<12 {
		n = 1 << 12
	}
	return n
}

func report(b *testing.B, st join.Stats) {
	b.ReportMetric(st.Mtps(), "Mtps")
}

// --- Figure 8: existing approaches ---

func BenchmarkFig08a_NLWJSingle(b *testing.B) {
	w := 1 << 10 // NLWJ is O(w) per tuple
	arr := benchArrivals(tuples(b))
	b.ResetTimer()
	report(b, join.NLWJ(arr[:b.N], join.SerialConfig{WR: w, WS: w, Band: band(w)}))
}

func BenchmarkFig08a_NLWJRoundRobin(b *testing.B) {
	w := 1 << 10
	arr := benchArrivals(tuples(b))
	b.ResetTimer()
	report(b, join.RunRR(arr[:b.N], join.RRConfig{Cores: 2, WR: w, WS: w, Band: band(w)}))
}

func BenchmarkFig08a_IBWJSingleBTree(b *testing.B) {
	arr := benchArrivals(tuples(b))
	b.ResetTimer()
	report(b, join.IBWJSerial(arr[:b.N], join.SerialConfig{
		WR: benchWindow, WS: benchWindow, Band: band(benchWindow), Index: join.IndexBTree,
	}))
}

func BenchmarkFig08a_IBWJRoundRobin(b *testing.B) {
	arr := benchArrivals(tuples(b))
	b.ResetTimer()
	report(b, join.RunRR(arr[:b.N], join.RRConfig{
		Cores: 2, WR: benchWindow, WS: benchWindow, Band: band(benchWindow), Indexed: true,
	}))
}

func BenchmarkFig08a_IBWJSharedBwTree(b *testing.B) {
	arr := benchArrivals(tuples(b))
	b.ResetTimer()
	report(b, join.RunShared(arr[:b.N], join.SharedConfig{
		Threads: 2, TaskSize: 8, WR: benchWindow, WS: benchWindow,
		Band: band(benchWindow), Index: join.IndexBwTree,
	}))
}

func BenchmarkFig08b_ChainIndex(b *testing.B) {
	for _, cfg := range []struct {
		name string
		kind join.IndexKind
		l    int
	}{
		{"BChain_L2", join.IndexChainB, 2},
		{"BChain_L8", join.IndexChainB, 8},
		{"IBChain_L2", join.IndexChainIB, 2},
		{"IBChain_L8", join.IndexChainIB, 8},
	} {
		b.Run(cfg.name, func(b *testing.B) {
			arr := benchArrivals(tuples(b))
			b.ResetTimer()
			report(b, join.IBWJSerial(arr[:b.N], join.SerialConfig{
				WR: benchWindow, WS: benchWindow, Band: band(benchWindow),
				Index: cfg.kind, ChainLength: cfg.l,
			}))
		})
	}
}

func BenchmarkFig08c_PIMSerialDI(b *testing.B) {
	for di := 1; di <= 3; di++ {
		b.Run(diName(di), func(b *testing.B) {
			arr := benchArrivals(tuples(b))
			b.ResetTimer()
			report(b, join.IBWJSerial(arr[:b.N], join.SerialConfig{
				WR: benchWindow, WS: benchWindow, Band: band(benchWindow),
				Index: join.IndexPIMTree,
				PIM:   core.PIMTreeConfig{MergeRatio: 1.0 / 16, InsertionDepth: di},
			}))
		})
	}
}

func diName(di int) string { return "DI" + string(rune('0'+di)) }

func BenchmarkFig08d_PIMParallelDI(b *testing.B) {
	for di := 1; di <= 3; di++ {
		b.Run(diName(di), func(b *testing.B) {
			arr := benchArrivals(tuples(b))
			b.ResetTimer()
			report(b, join.RunShared(arr[:b.N], join.SharedConfig{
				Threads: 2, TaskSize: 8, WR: benchWindow, WS: benchWindow,
				Band:  band(benchWindow),
				Index: join.IndexPIMTree,
				PIM:   core.PIMTreeConfig{MergeRatio: 1, InsertionDepth: di},
			}))
		})
	}
}

// --- Figure 9: merge ratio and step costs ---

func BenchmarkFig09a_ParallelMergeRatio(b *testing.B) {
	for _, m := range []float64{1.0 / 64, 1.0 / 8, 1} {
		b.Run(ratioName(m), func(b *testing.B) {
			arr := benchArrivals(tuples(b))
			b.ResetTimer()
			report(b, join.RunShared(arr[:b.N], join.SharedConfig{
				Threads: 2, TaskSize: 8, WR: benchWindow, WS: benchWindow,
				Band:  band(benchWindow),
				Index: join.IndexPIMTree,
				PIM:   core.PIMTreeConfig{MergeRatio: m, InsertionDepth: 2},
			}))
		})
	}
}

func ratioName(m float64) string {
	switch m {
	case 1:
		return "m1"
	case 1.0 / 8:
		return "m1_8"
	default:
		return "m1_64"
	}
}

func BenchmarkFig09b_StepCosts(b *testing.B) {
	arr := benchArrivals(tuples(b))
	b.ResetTimer()
	st := join.StepCosts(arr[:b.N], join.SerialConfig{
		WR: benchWindow, WS: benchWindow, Band: band(benchWindow),
		Index: join.IndexPIMTree, PIM: core.PIMTreeConfig{MergeRatio: 1.0 / 16, InsertionDepth: 2},
	})
	b.ReportMetric(st.PerTuple(metrics.StepSearch), "search-ns/tuple")
	b.ReportMetric(st.PerTuple(metrics.StepInsert), "insert-ns/tuple")
	b.ReportMetric(st.PerTuple(metrics.StepMerge), "merge-ns/tuple")
}

func BenchmarkFig09c_IMSerialMergeRatio(b *testing.B) {
	arr := benchArrivals(tuples(b))
	b.ResetTimer()
	report(b, join.IBWJSerial(arr[:b.N], join.SerialConfig{
		WR: benchWindow, WS: benchWindow, Band: band(benchWindow),
		Index: join.IndexIMTree, IM: core.IMTreeConfig{MergeRatio: 1.0 / 8},
	}))
}

func BenchmarkFig09d_PIMSerialMergeRatio(b *testing.B) {
	arr := benchArrivals(tuples(b))
	b.ResetTimer()
	report(b, join.IBWJSerial(arr[:b.N], join.SerialConfig{
		WR: benchWindow, WS: benchWindow, Band: band(benchWindow),
		Index: join.IndexPIMTree, PIM: core.PIMTreeConfig{MergeRatio: 1.0 / 8, InsertionDepth: 2},
	}))
}

// --- Figure 10: index comparison, match rate, task size ---

func BenchmarkFig10a_SerialIndexes(b *testing.B) {
	for _, kind := range []join.IndexKind{join.IndexBTree, join.IndexIMTree, join.IndexPIMTree} {
		b.Run(kind.String(), func(b *testing.B) {
			arr := benchArrivals(tuples(b))
			b.ResetTimer()
			report(b, join.IBWJSerial(arr[:b.N], join.SerialConfig{
				WR: benchWindow, WS: benchWindow, Band: band(benchWindow),
				Index: kind,
				IM:    core.IMTreeConfig{MergeRatio: 1.0 / 16},
				PIM:   core.PIMTreeConfig{MergeRatio: 1.0 / 16, InsertionDepth: 2},
			}))
		})
	}
}

func BenchmarkFig10b_MatchRate(b *testing.B) {
	for _, sigma := range []float64{0.25, 2, 16} {
		b.Run(sigmaName(sigma), func(b *testing.B) {
			arr := benchArrivals(tuples(b))
			bd := join.Band{Diff: stream.UniformDiff(benchWindow, sigma)}
			b.ResetTimer()
			report(b, join.IBWJSerial(arr[:b.N], join.SerialConfig{
				WR: benchWindow, WS: benchWindow, Band: bd,
				Index: join.IndexPIMTree,
				PIM:   core.PIMTreeConfig{MergeRatio: 1.0 / 16, InsertionDepth: 2},
			}))
		})
	}
}

func sigmaName(s float64) string {
	switch {
	case s < 1:
		return "sigma0.25"
	case s < 10:
		return "sigma2"
	default:
		return "sigma16"
	}
}

func BenchmarkFig10c_TaskSize(b *testing.B) {
	for _, task := range []int{1, 8} {
		b.Run(taskName(task), func(b *testing.B) {
			arr := benchArrivals(tuples(b))
			b.ResetTimer()
			report(b, join.RunShared(arr[:b.N], join.SharedConfig{
				Threads: 2, TaskSize: task, WR: benchWindow, WS: benchWindow,
				Band: band(benchWindow), Index: join.IndexPIMTree,
				PIM: core.PIMTreeConfig{MergeRatio: 1, InsertionDepth: 2},
			}))
		})
	}
}

func taskName(t int) string {
	if t == 1 {
		return "task1"
	}
	return "task8"
}

func BenchmarkFig10d_Latency(b *testing.B) {
	arr := benchArrivals(tuples(b))
	rec := metrics.NewLatencyRecorder(1<<15, 8)
	b.ResetTimer()
	st := join.RunShared(arr[:b.N], join.SharedConfig{
		Threads: 2, TaskSize: 8, WR: benchWindow, WS: benchWindow,
		Band: band(benchWindow), Index: join.IndexPIMTree,
		PIM: core.PIMTreeConfig{MergeRatio: 1, InsertionDepth: 2}, Latency: rec,
	})
	report(b, st)
	b.ReportMetric(st.Latency.MeanMicros, "mean-latency-µs")
}

// --- Figure 11: memory, asymmetry, bandwidth ---

func BenchmarkFig11a_MemoryFootprint(b *testing.B) {
	// Footprint is size-structural: benchmark the fill+merge cycle and
	// report the resulting component sizes.
	for i := 0; i < b.N; i++ {
		pt := core.NewPIMTree(benchWindow, core.PIMTreeConfig{MergeRatio: 1, InsertionDepth: 2})
		gen := stream.NewUniform(1)
		for j := 0; j < benchWindow; j++ {
			pt.Insert(kvPair(gen.Next(), uint32(j)))
		}
		pt.MergeInPlace(func(core2 kvPairT) bool { return true })
		if i == 0 {
			m := pt.Memory()
			b.ReportMetric(float64(m.TSLeafBytes+m.TSInnerBytes+m.TIBytes)/1e6, "MB")
		}
	}
}

func BenchmarkFig11b_AsymmetricRates(b *testing.B) {
	arr := stream.NewInterleaver(1, stream.NewUniform(2), stream.NewUniform(3), 0.2).Take(tuples(b))
	b.ResetTimer()
	report(b, join.RunShared(arr[:b.N], join.SharedConfig{
		Threads: 2, TaskSize: 8, WR: benchWindow, WS: benchWindow,
		Band: band(benchWindow), Index: join.IndexPIMTree,
		PIM: core.PIMTreeConfig{MergeRatio: 1, InsertionDepth: 2},
	}))
}

func BenchmarkFig11c_AsymmetricWindows(b *testing.B) {
	arr := benchArrivals(tuples(b))
	b.ResetTimer()
	report(b, join.RunShared(arr[:b.N], join.SharedConfig{
		Threads: 2, TaskSize: 8, WR: benchWindow / 4, WS: benchWindow * 2,
		Band: band(benchWindow), Index: join.IndexPIMTree,
		PIM: core.PIMTreeConfig{MergeRatio: 1, InsertionDepth: 2},
	}))
}

func BenchmarkFig11d_MemoryBandwidth(b *testing.B) {
	arr := benchArrivals(tuples(b))
	metrics.Tracing = true
	metrics.ResetTraffic()
	b.ResetTimer()
	st := join.RunShared(arr[:b.N], join.SharedConfig{
		Threads: 2, TaskSize: 8, WR: benchWindow, WS: benchWindow,
		Band: band(benchWindow), Index: join.IndexPIMTree,
		PIM: core.PIMTreeConfig{MergeRatio: 1, InsertionDepth: 2},
	})
	b.StopTimer()
	tr := metrics.SnapshotTraffic()
	metrics.Tracing = false
	b.ReportMetric(metrics.Bandwidth(tr.LoadBytes, st.Elapsed), "load-GB/s")
	b.ReportMetric(metrics.Bandwidth(tr.StoreBytes, st.Elapsed), "store-GB/s")
}

// --- Figure 12: scalability, skew, self-join ---

func BenchmarkFig12a_Scalability(b *testing.B) {
	for _, threads := range []int{1, 2, 4} {
		b.Run(threadName(threads), func(b *testing.B) {
			arr := benchArrivals(tuples(b))
			b.ResetTimer()
			report(b, join.RunShared(arr[:b.N], join.SharedConfig{
				Threads: threads, TaskSize: 8, WR: benchWindow, WS: benchWindow,
				Band: band(benchWindow), Index: join.IndexPIMTree,
				PIM: core.PIMTreeConfig{MergeRatio: 1, InsertionDepth: 2},
			}))
		})
	}
}

func threadName(t int) string { return "threads" + string(rune('0'+t)) }

func BenchmarkFig12b_SkewedDistributions(b *testing.B) {
	mk := func(s int64) stream.KeyGen { return stream.NewGaussian(s, 0.5, 0.125) }
	diff := stream.CalibrateDiff(mk, benchWindow, 2)
	arr := stream.NewInterleaver(1, mk(2), mk(3), 0.5).Take(tuples(b))
	b.ResetTimer()
	report(b, join.RunShared(arr[:b.N], join.SharedConfig{
		Threads: 2, TaskSize: 8, WR: benchWindow, WS: benchWindow,
		Band: join.Band{Diff: diff}, Index: join.IndexPIMTree,
		PIM: core.PIMTreeConfig{MergeRatio: 1, InsertionDepth: 2},
	}))
}

func BenchmarkFig12c_SelfJoin(b *testing.B) {
	arr := benchSelf(tuples(b))
	b.ResetTimer()
	report(b, join.RunShared(arr[:b.N], join.SharedConfig{
		Threads: 2, TaskSize: 8, WR: benchWindow, Self: true,
		Band: band(benchWindow), Index: join.IndexPIMTree,
		PIM: core.PIMTreeConfig{MergeRatio: 1, InsertionDepth: 2},
	}))
}

// --- Figure 13: drift and merge modes ---

func BenchmarkFig13a_DriftInsertSkew(b *testing.B) {
	gen := stream.NewShiftingGaussian(1, 1.0, benchWindow, 3*benchWindow)
	pt := core.NewPIMTree(benchWindow, core.PIMTreeConfig{MergeRatio: 1, InsertionDepth: 3})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pt.Insert(kvPair(gen.Next(), uint32(i)))
		if pt.NeedsMerge() {
			pt.MergeInPlace(func(kvPairT) bool { return true })
		}
	}
}

func BenchmarkFig13b_DriftThroughput(b *testing.B) {
	gen := stream.NewShiftingGaussian(1, 0.6, benchWindow, 3*benchWindow)
	arr := stream.NewSelfStream(gen).Take(tuples(b))
	diff := stream.CalibrateDiff(func(s int64) stream.KeyGen {
		return stream.NewGaussian(s, 0.5, 0.125)
	}, benchWindow, 2)
	b.ResetTimer()
	report(b, join.RunShared(arr[:b.N], join.SharedConfig{
		Threads: 2, TaskSize: 8, WR: benchWindow, Self: true,
		Band: join.Band{Diff: diff}, Index: join.IndexPIMTree,
		PIM: core.PIMTreeConfig{MergeRatio: 1, InsertionDepth: 2},
	}))
}

func BenchmarkFig13c_BlockingVsNonblockingMerge(b *testing.B) {
	for _, blocking := range []bool{false, true} {
		name := "nonblocking"
		if blocking {
			name = "blocking"
		}
		b.Run(name, func(b *testing.B) {
			arr := benchArrivals(tuples(b))
			b.ResetTimer()
			report(b, join.RunShared(arr[:b.N], join.SharedConfig{
				Threads: 2, TaskSize: 8, WR: benchWindow, WS: benchWindow,
				Band: band(benchWindow), Index: join.IndexPIMTree,
				PIM:           core.PIMTreeConfig{MergeRatio: 1, InsertionDepth: 2},
				BlockingMerge: blocking,
			}))
		})
	}
}

// --- Figure 14: merge cost ---

func BenchmarkFig14_MergeCost(b *testing.B) {
	pt := core.NewPIMTree(benchWindow, core.PIMTreeConfig{MergeRatio: 1, InsertionDepth: 2})
	gen := stream.NewUniform(1)
	ref := uint32(0)
	fill := func(n int) {
		for i := 0; i < n; i++ {
			pt.Insert(kvPair(gen.Next(), ref))
			ref++
		}
	}
	fill(benchWindow)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pt.MergeInPlace(func(kvPairT) bool { return true })
		b.StopTimer()
		fill(pt.MergeThreshold())
		b.StartTimer()
	}
}

// --- Ablations ---

func BenchmarkAblationCSSFanout(b *testing.B) {
	arr := benchArrivals(tuples(b))
	b.ResetTimer()
	report(b, join.IBWJSerial(arr[:b.N], join.SerialConfig{
		WR: benchWindow, WS: benchWindow, Band: band(benchWindow),
		Index: join.IndexPIMTree,
		PIM:   core.PIMTreeConfig{MergeRatio: 1.0 / 16, InsertionDepth: 2},
	}))
}

func BenchmarkAblationSingleLock(b *testing.B) {
	arr := benchArrivals(tuples(b))
	b.ResetTimer()
	report(b, join.RunShared(arr[:b.N], join.SharedConfig{
		Threads: 2, TaskSize: 8, WR: benchWindow, WS: benchWindow,
		Band: band(benchWindow), Index: join.IndexPIMTree,
		PIM: core.PIMTreeConfig{MergeRatio: 1, InsertionDepth: 2, SingleLock: true},
	}))
}

func BenchmarkAblationEdgeScan(b *testing.B) {
	arr := benchArrivals(tuples(b))
	b.ResetTimer()
	report(b, join.RunShared(arr[:b.N], join.SharedConfig{
		Threads: 2, TaskSize: 64, WR: benchWindow, WS: benchWindow,
		Band: band(benchWindow), Index: join.IndexPIMTree,
		PIM: core.PIMTreeConfig{MergeRatio: 1, InsertionDepth: 2},
	}))
}

// --- harness sanity: the full quick-scale suite stays runnable ---

func BenchmarkHarnessQuickSuite(b *testing.B) {
	if b.N > 1 {
		b.Skip("one-shot harness benchmark")
	}
	cfg := bench.Config{Scale: bench.Quick, Threads: 2, Seed: 7}
	e, _ := bench.ByID("fig10a")
	e.Run(cfg, discard{})
}

type discard struct{}

func (discard) Write(p []byte) (int, error) { return len(p), nil }

type kvPairT = kv.Pair

func kvPair(k, r uint32) kv.Pair { return kv.Pair{Key: k, Ref: r} }
