// Crash-injection recovery suite: every test here kills a durable engine at
// a deterministically injected crash point (the Nth written byte or Nth
// fsync of an in-memory filesystem), reboots onto the surviving files, and
// proves the recovered engine EQUIVALENT to an oracle — a fresh engine fed
// exactly the per-stream input prefix the recovery reports as durable. The
// two are then driven with an identical fresh tail and must emit the same
// match multiset; since matches are keyed by per-stream sequence numbers and
// recovery resumes the global numbering, the multisets must agree exactly.
//
// The suite sweeps crash points across every sharded backend in both the
// count- and time-window modes, under both survivor models (unsynced bytes
// lost or kept — the latter is what leaves torn frames), and layers explicit
// corruption on top: bit flips, chopped segment tails, duplicated records,
// and a corrupted snapshot. Recovery must never return an error or panic on
// any of these; it truncates, falls back, and reports via WALStats.
package pimtree

import (
	"context"
	"sort"
	"strings"
	"sync"
	"testing"

	"pimtree/internal/wal"
)

const crashDir = "/wal"

// recoveryCase is one engine shape swept by the crash tests.
type recoveryCase struct {
	name    string
	backend Backend
	timed   bool
	self    bool
	slack   uint64 // timed only; >0 also selects LateDrop
}

// config builds the oracle (non-durable) configuration; durable adds the WAL.
func (rc recoveryCase) config(rec *matchRecorder) Config {
	cfg := Config{
		Backend:   rc.backend,
		Self:      rc.self,
		Diff:      16,
		Shards:    2,
		BatchSize: 16,
	}
	if rc.timed {
		cfg.Mode = ModeShardedTime
		cfg.Span = 64
		cfg.MaxLive = 4096
		cfg.Slack = rc.slack
		if rc.slack > 0 {
			cfg.LatePolicy = LateDrop
		}
	} else {
		cfg.Mode = ModeSharded
		cfg.WindowR, cfg.WindowS = 32, 32
	}
	if rec != nil {
		cfg.OnMatch = rec.add
	} else {
		cfg.DiscardMatches = true
	}
	return cfg
}

func (rc recoveryCase) durable(fsyncEvery int, rec *matchRecorder) Config {
	cfg := rc.config(rec)
	cfg.Durability = Durability{Dir: crashDir, FsyncEvery: fsyncEvery, SnapshotEvery: 256}
	return cfg
}

// recTuple is one generated arrival. seq is the per-stream arrival index —
// equal to the sequence number the router will assign as long as admission
// order is arrival order (count mode, or timed with sorted input).
type recTuple struct {
	stream uint8
	key    uint32
	ts     uint64
	seq    uint64
}

// genRecInput generates a deterministic workload: pseudo-random stream and
// key, strictly increasing timestamps (gap 1..3, so Span 64 covers roughly
// 32 arrivals).
func genRecInput(rc recoveryCase, n int, seed uint64) []recTuple {
	x := seed
	var cnt [2]uint64
	var ts uint64
	out := make([]recTuple, n)
	for i := range out {
		x = x*6364136223846793005 + 1442695040888963407
		s := uint8(x>>17) & 1
		if rc.self {
			s = 0
		}
		ts += 1 + uint64(x>>7)%3
		out[i] = recTuple{stream: s, key: uint32(x>>33) & 4095, ts: ts, seq: cnt[s]}
		cnt[s]++
	}
	return out
}

// matchRecorder collects matches from the engine's OnMatch callback, which
// may run concurrently with the test goroutine between Drain points.
type matchRecorder struct {
	mu sync.Mutex
	ms []Match
}

func (r *matchRecorder) add(m Match) {
	r.mu.Lock()
	r.ms = append(r.ms, m)
	r.mu.Unlock()
}

func (r *matchRecorder) count() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.ms)
}

// from returns the matches recorded at index >= base, canonically sorted.
func (r *matchRecorder) from(base int) []Match {
	r.mu.Lock()
	out := append([]Match(nil), r.ms[base:]...)
	r.mu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.ProbeStream != b.ProbeStream {
			return a.ProbeStream < b.ProbeStream
		}
		if a.ProbeSeq != b.ProbeSeq {
			return a.ProbeSeq < b.ProbeSeq
		}
		return a.MatchSeq < b.MatchSeq
	})
	return out
}

func matchesEqual(a, b []Match) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func pushRec(t *testing.T, e *Engine, rc recoveryCase, in []recTuple) {
	t.Helper()
	for _, tu := range in {
		var err error
		if rc.timed {
			err = e.PushTimed(StreamID(tu.stream), tu.key, tu.ts)
		} else {
			err = e.Push(StreamID(tu.stream), tu.key)
		}
		if err != nil {
			t.Fatalf("push: %v", err)
		}
	}
}

// runToCrash drives a durable engine over fs until the workload ends or the
// armed crash point kills the filesystem underneath it; either way the
// engine itself must keep running (degraded to in-memory) and close cleanly.
func runToCrash(t *testing.T, rc recoveryCase, fsyncEvery int, in []recTuple, fs *wal.MemFS) {
	t.Helper()
	eng, err := openWithWALFS(rc.durable(fsyncEvery, nil), fs)
	if err != nil {
		t.Fatalf("open durable: %v", err)
	}
	pushRec(t, eng, rc, in)
	if _, err := eng.Close(context.Background()); err != nil {
		t.Fatalf("close crashed-run engine: %v", err)
	}
}

// verifyRecovery reboots onto the survivor filesystem and proves oracle
// equivalence: the recovery algorithm names the durable per-stream prefix
// (probed via wal.Open on an identical copy), an oracle engine is fed
// exactly that prefix, and both engines then receive the same fresh tail.
// Their tail-phase match multisets must be identical. Returns the recovered
// heads and the recovered engine's WALStats for test-specific assertions.
func verifyRecovery(t *testing.T, rc recoveryCase, fsyncEvery int, in, tail []recTuple, crashed *wal.MemFS, loseUnsynced bool) ([2]uint64, WALStats) {
	t.Helper()
	ctx := context.Background()
	survivor := crashed.Crash(loseUnsynced)
	probe := crashed.Crash(loseUnsynced)

	// Ask the recovery algorithm what survived. Recovery is a deterministic
	// function of the file contents, so the probe's answer is the engine's.
	pcfg := rc.durable(fsyncEvery, nil)
	_, pst, err := wal.Open(walOptions(pcfg, probe))
	if err != nil {
		t.Fatalf("probe recovery: %v", err)
	}
	var heads [2]uint64
	if pst != nil {
		heads = pst.Heads
	}

	recRec := &matchRecorder{}
	recEng, err := openWithWALFS(rc.durable(fsyncEvery, recRec), survivor)
	if err != nil {
		t.Fatalf("recovery open: %v", err)
	}
	ws := recEng.WALStats()
	if !ws.Enabled {
		t.Fatalf("recovered engine reports WALStats.Enabled = false")
	}

	oraRec := &matchRecorder{}
	oracle, err := Open(rc.config(oraRec))
	if err != nil {
		t.Fatalf("open oracle: %v", err)
	}
	eligible := make([]recTuple, 0, len(in))
	for _, tu := range in {
		if tu.seq < heads[tu.stream] {
			eligible = append(eligible, tu)
		}
	}
	pushRec(t, oracle, rc, eligible)
	if err := oracle.Drain(ctx); err != nil {
		t.Fatalf("oracle drain: %v", err)
	}
	base := oraRec.count()

	pushRec(t, recEng, rc, tail)
	pushRec(t, oracle, rc, tail)
	if err := recEng.Drain(ctx); err != nil {
		t.Fatalf("recovered drain: %v", err)
	}
	if err := oracle.Drain(ctx); err != nil {
		t.Fatalf("oracle drain: %v", err)
	}

	got := recRec.from(0) // the recovered engine only ever saw the tail
	want := oraRec.from(base)
	if !matchesEqual(got, want) {
		t.Errorf("recovered engine diverged from oracle after heads=%v (lose=%v): %d tail matches, oracle %d",
			heads, loseUnsynced, len(got), len(want))
	}

	if _, err := recEng.Close(ctx); err != nil {
		t.Errorf("close recovered: %v", err)
	}
	if _, err := oracle.Close(ctx); err != nil {
		t.Errorf("close oracle: %v", err)
	}
	return heads, ws
}

// sweepCases lists the backend × mode grid. The PIM-Tree rows get the dense
// crash-point sweep; the baselines get a sparse one.
func sweepCases() []recoveryCase {
	return []recoveryCase{
		{name: "pim-count", backend: PIMTree},
		{name: "pim-timed", backend: PIMTree, timed: true},
		{name: "im-count", backend: IMTree},
		{name: "im-timed", backend: IMTree, timed: true},
		{name: "btree-count", backend: BPlusTree},
		{name: "btree-timed", backend: BPlusTree, timed: true},
		{name: "bwtree-count", backend: BwTree},
		{name: "bwtree-timed", backend: BwTree, timed: true},
		{name: "pim-self-count", backend: PIMTree, self: true},
	}
}

func TestCrashRecoverySweep(t *testing.T) {
	const n, m = 2048, 256
	for _, rc := range sweepCases() {
		rc := rc
		dense := strings.HasPrefix(rc.name, "pim-") && !rc.self
		t.Run(rc.name, func(t *testing.T) {
			t.Parallel()
			in := genRecInput(rc, n+m, uint64(len(rc.name))*0x9e3779b97f4a7c15+1)
			prefix, tail := in[:n], in[n:]
			fsyncs := []int{8}
			if dense && !testing.Short() {
				fsyncs = []int{8, 1}
			}
			for _, fe := range fsyncs {
				// Dry run sizes the byte- and sync-level sweeps.
				dry := wal.NewMemFS()
				runToCrash(t, rc, fe, prefix, dry)
				total, syncs := dry.TotalBytes(), dry.TotalSyncs()
				if total == 0 || syncs == 0 {
					t.Fatalf("dry run wrote nothing (bytes=%d syncs=%d)", total, syncs)
				}
				pcts := []int64{10, 50, 90}
				if dense && !testing.Short() {
					pcts = []int64{1, 2, 5, 10, 25, 40, 50, 60, 75, 90, 99}
				}
				for _, pct := range pcts {
					fs := wal.NewMemFS()
					fs.CrashAfterBytes(total * pct / 100)
					runToCrash(t, rc, fe, prefix, fs)
					// Both survivor models: cache lost (clean prefix at the
					// last fsync) and cache kept (torn frame at the tear).
					verifyRecovery(t, rc, fe, prefix, tail, fs, true)
					verifyRecovery(t, rc, fe, prefix, tail, fs, false)
				}
				if dense {
					for _, pct := range []int64{25, 75} {
						fs := wal.NewMemFS()
						fs.CrashAfterSyncs(syncs * pct / 100)
						runToCrash(t, rc, fe, prefix, fs)
						verifyRecovery(t, rc, fe, prefix, tail, fs, true)
						verifyRecovery(t, rc, fe, prefix, tail, fs, false)
					}
				}
			}
		})
	}
}

// TestCleanCloseRecovery is the no-crash baseline of the sweep: Close seals
// every lane, so a reboot must recover the full pushed prefix exactly.
func TestCleanCloseRecovery(t *testing.T) {
	const n, m = 1024, 256
	for _, rc := range []recoveryCase{
		{name: "count", backend: PIMTree},
		{name: "timed", backend: PIMTree, timed: true},
		{name: "self", backend: PIMTree, self: true},
	} {
		rc := rc
		t.Run(rc.name, func(t *testing.T) {
			in := genRecInput(rc, n+m, 7)
			prefix, tail := in[:n], in[n:]
			fs := wal.NewMemFS()
			runToCrash(t, rc, 8, prefix, fs)
			var want [2]uint64
			for _, tu := range prefix {
				want[tu.stream]++
			}
			heads, ws := verifyRecovery(t, rc, 8, prefix, tail, fs, true)
			if heads != want {
				t.Fatalf("clean close recovered heads %v, want %v", heads, want)
			}
			if ws.ReplayRecords == 0 {
				t.Fatalf("clean close recovery replayed no records")
			}
		})
	}
}

// TestCrashRecoveryAcrossReshard crashes an engine whose shard count was
// reconfigured mid-stream: the reshape epoch seals the old lanes and opens
// fresh ones, and recovery must stitch the prefix across both generations.
func TestCrashRecoveryAcrossReshard(t *testing.T) {
	rc := recoveryCase{name: "reshard", backend: PIMTree}
	const n, m = 2048, 256
	in := genRecInput(rc, n+m, 99)
	prefix, tail := in[:n], in[n:]

	run := func(t *testing.T, fs *wal.MemFS) {
		t.Helper()
		eng, err := openWithWALFS(rc.durable(8, nil), fs)
		if err != nil {
			t.Fatalf("open durable: %v", err)
		}
		pushRec(t, eng, rc, prefix[:n/2])
		if err := eng.Reconfigure(Delta{Shards: 3}); err != nil {
			t.Fatalf("reconfigure: %v", err)
		}
		pushRec(t, eng, rc, prefix[n/2:])
		if _, err := eng.Close(context.Background()); err != nil {
			t.Fatalf("close: %v", err)
		}
	}

	dry := wal.NewMemFS()
	run(t, dry)
	total := dry.TotalBytes()
	for _, pct := range []int64{30, 60, 90} {
		fs := wal.NewMemFS()
		fs.CrashAfterBytes(total * pct / 100)
		run(t, fs)
		verifyRecovery(t, rc, 8, prefix, tail, fs, true)
		verifyRecovery(t, rc, 8, prefix, tail, fs, false)
	}
}

// TestRecoveryAfterDrainWithSlack covers the out-of-order admission path:
// a bounded-disorder timed stream is pushed, Drain checkpoints it (flushing
// the reorder buffer and fsyncing every lane), and the process dies with all
// unsynced cache lost. Drain's contract makes the full prefix durable, so
// recovery must resume the complete window AND the reorder clock — the
// seeded watermark floor must keep the tail's admission identical to the
// oracle's.
func TestRecoveryAfterDrainWithSlack(t *testing.T) {
	rc := recoveryCase{name: "timed-slack", backend: PIMTree, timed: true, slack: 8}
	const n, m = 1024, 256
	in := genRecInput(rc, n+m, 1234)
	// Bounded shuffle inside the prefix: swapping adjacent arrivals keeps
	// disorder <= 2 gaps (max 6) < slack 8, so nothing is dropped. The seq
	// labels stay usable because verifyRecovery's eligibility filter passes
	// the whole prefix once heads equal the full counts (asserted below).
	x := uint64(5)
	for i := 0; i+1 < n; i += 2 {
		x = x*6364136223846793005 + 1442695040888963407
		if x>>40&1 == 1 {
			in[i], in[i+1] = in[i+1], in[i]
		}
	}
	prefix, tail := in[:n], in[n:]

	fs := wal.NewMemFS()
	eng, err := openWithWALFS(rc.durable(64, nil), fs)
	if err != nil {
		t.Fatalf("open durable: %v", err)
	}
	pushRec(t, eng, rc, prefix)
	if err := eng.Drain(context.Background()); err != nil {
		t.Fatalf("drain: %v", err)
	}
	// Kill the process right after the checkpoint, dropping every byte the
	// OS had not fsynced. Drain's sync must make that loss immaterial.
	crashed := fs.Crash(true)
	if _, err := eng.Close(context.Background()); err != nil {
		t.Fatalf("close: %v", err)
	}

	var want [2]uint64
	for _, tu := range prefix {
		want[tu.stream]++
	}
	heads, _ := verifyRecovery(t, rc, 64, prefix, tail, crashed, true)
	if heads != want {
		t.Fatalf("post-Drain crash recovered heads %v, want full prefix %v", heads, want)
	}
}

// corruptionRun does a clean durable run and hands the test the live MemFS
// to corrupt in place before verifyRecovery reboots on it.
func corruptionRun(t *testing.T, rc recoveryCase, prefix []recTuple) *wal.MemFS {
	t.Helper()
	fs := wal.NewMemFS()
	runToCrash(t, rc, 8, prefix, fs)
	return fs
}

// pickFile returns the largest stored file with the given suffix (ties by
// name), failing the test when none exists.
func pickFile(t *testing.T, fs *wal.MemFS, suffix string, minSize int) string {
	t.Helper()
	best, bestSize := "", -1
	for _, p := range fs.Paths() {
		if !strings.HasSuffix(p, suffix) {
			continue
		}
		if sz := fs.Size(p); sz >= minSize && sz > bestSize {
			best, bestSize = p, sz
		}
	}
	if best == "" {
		t.Fatalf("no %q file of at least %d bytes (have %v)", suffix, minSize, fs.Paths())
	}
	return best
}

func TestRecoveryBitFlipInSegment(t *testing.T) {
	for _, rc := range []recoveryCase{
		{name: "count", backend: PIMTree},
		{name: "timed", backend: PIMTree, timed: true},
	} {
		rc := rc
		t.Run(rc.name, func(t *testing.T) {
			in := genRecInput(rc, 1100+256, 21)
			prefix, tail := in[:1100], in[1100:]
			fs := corruptionRun(t, rc, prefix)
			seg := pickFile(t, fs, ".wal", 64)
			if !fs.FlipBit(seg, fs.Size(seg)/2*8+3) {
				t.Fatalf("flip failed on %s", seg)
			}
			_, ws := verifyRecovery(t, rc, 8, prefix, tail, fs, true)
			if ws.Truncations == 0 {
				t.Errorf("bit flip in %s survived recovery without a truncation", seg)
			}
		})
	}
}

func TestRecoveryChoppedSegmentTail(t *testing.T) {
	rc := recoveryCase{name: "chop", backend: PIMTree}
	in := genRecInput(rc, 1100+256, 33)
	prefix, tail := in[:1100], in[1100:]
	fs := corruptionRun(t, rc, prefix)
	seg := pickFile(t, fs, ".wal", 64)
	data, err := fs.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	f, err := fs.Create(seg) // Create truncates: rewrite 5 bytes short
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write(data[:len(data)-5]); err != nil {
		t.Fatal(err)
	}
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	_, ws := verifyRecovery(t, rc, 8, prefix, tail, fs, true)
	if ws.Truncations == 0 {
		t.Errorf("chopped tail of %s survived recovery without a truncation", seg)
	}
}

// TestRecoveryDuplicatedSegment doubles a whole segment in place; replay
// dedups by (stream, seq) first-wins, so the recovered prefix must be
// byte-for-byte what the un-duplicated log would have yielded.
func TestRecoveryDuplicatedSegment(t *testing.T) {
	rc := recoveryCase{name: "dup", backend: PIMTree}
	in := genRecInput(rc, 1100+256, 44)
	prefix, tail := in[:1100], in[1100:]

	fs := corruptionRun(t, rc, prefix)
	baseHeads, _ := verifyRecovery(t, rc, 8, prefix, tail, fs.Crash(true), true)

	seg := pickFile(t, fs, ".wal", 64)
	data, err := fs.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	f, err := fs.Create(seg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write(append(append([]byte(nil), data...), data...)); err != nil {
		t.Fatal(err)
	}
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	heads, _ := verifyRecovery(t, rc, 8, prefix, tail, fs, true)
	if heads != baseHeads {
		t.Errorf("duplicated %s changed recovered heads: %v, want %v", seg, heads, baseHeads)
	}
}

// TestRecoveryCorruptSnapshot flips a bit in the newest snapshot. The prune
// policy keeps only that snapshot, so recovery must reject it and degrade to
// whatever the remaining segments prove — possibly nothing — without error.
func TestRecoveryCorruptSnapshot(t *testing.T) {
	rc := recoveryCase{name: "snap", backend: PIMTree}
	in := genRecInput(rc, 1024+256, 55)
	prefix, tail := in[:1024], in[1024:]
	fs := corruptionRun(t, rc, prefix)
	snap := pickFile(t, fs, ".snap", 32)
	if !fs.FlipBit(snap, fs.Size(snap)/2*8) {
		t.Fatalf("flip failed on %s", snap)
	}
	_, ws := verifyRecovery(t, rc, 8, prefix, tail, fs, true)
	if ws.Truncations == 0 {
		t.Errorf("corrupt snapshot %s accepted by recovery", snap)
	}
}
