package pimtree

import (
	"context"
	"errors"
	"fmt"
	"iter"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"pimtree/internal/core"
	"pimtree/internal/join"
	"pimtree/internal/metrics"
	"pimtree/internal/shard"
	"pimtree/internal/stream"
	"pimtree/internal/tune"
	"pimtree/internal/wal"
)

// Mode selects the execution runtime behind an Engine.
type Mode int

// The execution modes. ModeAuto picks one from the Config: a time window
// (Span > 0) selects ModeShardedTime, a chained backend forces ModeSerial,
// and otherwise multicore hosts get ModeSharded and single-core hosts
// ModeSerial.
const (
	ModeAuto Mode = iota
	// ModeSerial runs the single-threaded incremental IBWJ (Section 2) —
	// every backend, synchronous matches, no goroutines.
	ModeSerial
	// ModeShared runs the paper's parallel shared-index join (Section 4):
	// worker threads over shared PIM-Tree or Bw-Tree indexes with ordered
	// result propagation.
	ModeShared
	// ModeSharded runs the key-range sharded runtime: single-writer
	// per-shard indexes behind a routing stage, with optional adaptive
	// rebalancing.
	ModeSharded
	// ModeShardedTime runs the sharded runtime over time-based windows with
	// out-of-order admission through a bounded reorder buffer.
	ModeShardedTime
)

// String names the mode.
func (m Mode) String() string {
	switch m {
	case ModeAuto:
		return "auto"
	case ModeSerial:
		return "serial"
	case ModeShared:
		return "shared"
	case ModeSharded:
		return "sharded"
	case ModeShardedTime:
		return "sharded-time"
	default:
		return "unknown"
	}
}

// modeFor maps the tune package's runtime identifiers back onto the public
// modes (internal/tune cannot import this package).
func modeFor(r tune.Runtime) Mode {
	switch r {
	case tune.Serial:
		return ModeSerial
	case tune.Shared:
		return ModeShared
	case tune.ShardedTime:
		return ModeShardedTime
	default:
		return ModeSharded
	}
}

// Named error conditions of the Engine API, matchable with errors.Is.
var (
	// ErrClosed is returned by operations on an engine that has been closed.
	ErrClosed = errors.New("pimtree: engine is closed")
	// ErrAborted is returned by operations on an engine whose Drain or Close
	// was abandoned by a canceled context; only Close is still permitted.
	ErrAborted = errors.New("pimtree: engine aborted by a canceled Drain or Close")
	// ErrUnsupportedBackend is wrapped by validation errors rejecting a
	// backend the selected execution mode cannot run.
	ErrUnsupportedBackend = errors.New("backend not supported by execution mode")
	// ErrUnordered is wrapped by errors rejecting timestamp-regressing input
	// pushed to a time-based runtime in strict (LateNone) mode.
	ErrUnordered = errors.New("arrivals are not timestamp-ordered")
	// ErrNotTunable is wrapped by Reconfigure errors on engines whose
	// execution mode has no live-tunable parameters (the serial and shared
	// runtimes).
	ErrNotTunable = errors.New("execution mode has no live-tunable parameters")
)

// errNotSorted is the uniform strict-mode disorder rejection shared by every
// time-based entry point.
func errNotSorted() error {
	return fmt.Errorf("pimtree: %w; set a LatePolicy (and Slack) to enable out-of-order ingestion", ErrUnordered)
}

// validateWindows is the uniform count-window validation shared by every
// count-window constructor.
func validateWindows(wr, ws int, self bool) error {
	if wr <= 0 {
		return fmt.Errorf("pimtree: WindowR %d must be positive", wr)
	}
	if !self && ws <= 0 {
		return fmt.Errorf("pimtree: WindowS %d must be positive", ws)
	}
	return nil
}

// validateTimeWindow is the uniform time-window validation shared by every
// time-based constructor.
func validateTimeWindow(span uint64, maxLive int, needLive bool) error {
	if span == 0 {
		return fmt.Errorf("pimtree: Span must be positive")
	}
	if needLive && maxLive <= 0 {
		return fmt.Errorf("pimtree: MaxLive must be positive")
	}
	return nil
}

// validateBackend is the uniform backend-support validation: every rejection
// wraps ErrUnsupportedBackend so callers can branch on the condition rather
// than the message.
func validateBackend(m Mode, b Backend) error {
	switch m {
	case ModeSerial:
		return nil // every backend has a serial adapter
	case ModeShared:
		if b == PIMTree || b == BwTree {
			return nil
		}
	case ModeSharded, ModeShardedTime:
		if b != BChain && b != IBChain {
			return nil
		}
	}
	return fmt.Errorf("pimtree: %s mode does not support the %s backend: %w", m, b, ErrUnsupportedBackend)
}

// Config is the one validated option set behind every execution mode — the
// union of the windows, band, backend, and index tuning the four runtimes
// share, plus the per-mode knobs each one reads. Open validates it once;
// the batch entry points (RunParallel, RunSharded, RunShardedTime, NewJoin)
// are wrappers that translate their historical option structs into a Config.
type Config struct {
	// Mode selects the runtime; ModeAuto (the zero value) picks one from
	// the rest of the configuration (see Mode).
	Mode Mode

	// WindowR and WindowS are the count-window lengths (WindowS is ignored
	// for self-joins). Required for the count-window modes.
	WindowR int
	WindowS int
	// Span is the time-window duration in timestamp units; setting it (with
	// ModeAuto) selects ModeShardedTime. MaxLive bounds simultaneously live
	// tuples per window and sizes the per-shard stores (required with Span).
	Span    uint64
	MaxLive int

	Self bool   // self-join: one stream, one window
	Diff uint32 // band half-width: |R.x - S.x| <= Diff

	// Backend selects the index structure. ModeShared supports PIMTree and
	// BwTree; the sharded modes support everything but the chained
	// backends; ModeSerial supports all. An unsupported combination fails
	// Open with an error wrapping ErrUnsupportedBackend.
	Backend Backend
	// ChainLength is L for the chain backends (default 2, serial mode only).
	ChainLength int
	// Index tunes the two-stage backends. In ModeShared a zero MergeRatio
	// defaults to 1 (Figure 9a: best under heavy index sharing); everywhere
	// else — including the sharded modes, whose per-shard indexes are
	// single-writer — it defaults to the serial 1/16.
	Index IndexOptions

	// Threads and TaskSize drive ModeShared's worker pool (defaults: 1 and
	// 8). BlockingMerge disables its non-blocking two-phase merge. With
	// ModeAuto, setting any of these selects ModeShared. Outside ModeShared
	// they are ignored, like every per-mode knob outside its mode.
	Threads       int
	TaskSize      int
	BlockingMerge bool
	// RecordLatency enables per-tuple latency sampling (ModeShared).
	RecordLatency bool

	// Shards, BatchSize, and Partitioner shape the sharded modes (defaults:
	// GOMAXPROCS, 64, equal-width ranges). Adaptive enables online shard
	// rebalancing tuned by Rebalance (ModeSharded only; setting it in any
	// other mode fails validation). In the sharded modes Shards and
	// BatchSize only set the starting values — both are live-tunable
	// afterwards through Engine.Reconfigure.
	Shards      int
	BatchSize   int
	Partitioner Partitioner
	Adaptive    bool
	Rebalance   RebalancePolicy

	// AutoTune starts the feedback controller: a background goroutine that
	// samples the live load statistics and applies bounded Reconfigure
	// deltas (grow/shrink shards, enable rebalancing) when sustained
	// pressure or idleness clears the controller's hysteresis. Sharded
	// modes only; with ModeAuto it selects ModeSharded like the other
	// sharded knobs. Tune adjusts the controller (ignored otherwise).
	AutoTune bool
	Tune     TunePolicy

	// Slack, LatePolicy, and OnLate configure out-of-order admission for
	// ModeShardedTime (see LatePolicy). With LateNone, pushes must be
	// timestamp-ordered and a regression fails with ErrUnordered. Setting
	// any of them in a count-window mode fails validation — there is no
	// event time for them to act on.
	Slack      uint64
	LatePolicy LatePolicy
	OnLate     func(t TimedArrival, lateness uint64)

	// OnMatch observes every match in arrival (propagation) order — the
	// push-side output. The pull side is Engine.Matches.
	OnMatch func(Match)
	// DiscardMatches keeps the engine from materializing individual matches
	// when neither output side is wanted: matches are only counted,
	// Matches() yields nothing, and OnMatch must be nil. The batch wrappers
	// set it when run without a callback, preserving their count-only fast
	// path.
	DiscardMatches bool

	// QueueCapacity bounds the in-flight (pushed but not yet propagated)
	// tuples of the parallel modes; a Push past it blocks until the ordered
	// propagation frontier advances — the session's backpressure. Zero
	// selects a default (8Ki for ModeShared, 16Ki for the sharded modes).
	// In the sharded modes it is live-tunable through Engine.Reconfigure;
	// in ModeShared it is fixed at Open.
	QueueCapacity int

	// Durability makes the sharded window state crash-recoverable through a
	// per-shard write-ahead log plus periodic compacting snapshots (see
	// Durability). Zero value disables it. With ModeAuto, setting
	// Durability.Dir selects a sharded mode like the other sharded knobs.
	Durability Durability
}

// validate resolves ModeAuto and checks the whole Config, returning the
// normalized copy. It is the single validation point behind every
// constructor in this package.
func (c Config) validate() (Config, error) {
	if c.Mode == ModeAuto {
		// The decision table lives in internal/tune so the control plane
		// (which re-validates merged configs on live reconfiguration) shares
		// one source of truth with Open.
		c.Mode = modeFor(tune.ResolveRuntime(tune.Workload{
			TimeWindow:     c.Span > 0,
			ChainedBackend: c.Backend == BChain || c.Backend == IBChain,
			ShardedKnobs:   c.Shards > 0 || c.Partitioner != nil || c.Adaptive || c.AutoTune || c.Durability.enabled(),
			SharedKnobs:    c.Threads > 0 || c.TaskSize > 0 || c.BlockingMerge || c.RecordLatency,
			Cores:          runtime.GOMAXPROCS(0),
		}))
	}
	switch c.Mode {
	case ModeSerial, ModeShared, ModeSharded:
		if err := validateWindows(c.WindowR, c.WindowS, c.Self); err != nil {
			return c, err
		}
		// The time-window knobs change join semantics entirely and the
		// out-of-order knobs act on event time, which count windows do not
		// have; rejecting them beats silently ignoring them. (With ModeAuto
		// a Span resolves to ModeShardedTime, so reaching here means the
		// caller pinned a count mode explicitly.)
		if c.Span > 0 || c.MaxLive > 0 {
			return c, fmt.Errorf("pimtree: Span/MaxLive require %s mode (got %s)", ModeShardedTime, c.Mode)
		}
		if c.Slack > 0 || c.LatePolicy != LateNone || c.OnLate != nil {
			return c, fmt.Errorf("pimtree: Slack/LatePolicy/OnLate require %s mode (got %s)", ModeShardedTime, c.Mode)
		}
	case ModeShardedTime:
		if err := validateTimeWindow(c.Span, c.MaxLive, true); err != nil {
			return c, err
		}
		if err := validateLate(c.LatePolicy, c.Slack, c.OnLate); err != nil {
			return c, err
		}
	default:
		return c, fmt.Errorf("pimtree: unknown Mode %d", c.Mode)
	}
	if err := validateBackend(c.Mode, c.Backend); err != nil {
		return c, err
	}
	if c.Mode == ModeShared && c.Backend == BwTree {
		// The Bw-Tree's eager deletes need windows comfortably larger than
		// the in-flight bound (StartShared would panic); surface it as a
		// validation error like every other bad Config.
		ws := c.WindowS
		if c.Self {
			ws = c.WindowR
		}
		if inflight, ok := join.SharedWindowCheck(c.Threads, c.TaskSize, c.WindowR, ws); !ok {
			return c, fmt.Errorf("pimtree: windows (%d,%d) too small for %d in-flight tuples with the %s backend's eager deletes in %s mode",
				c.WindowR, ws, inflight, c.Backend, c.Mode)
		}
	}
	if c.Adaptive && c.Mode != ModeSharded {
		return c, fmt.Errorf("pimtree: adaptive rebalancing requires %s mode (got %s)", ModeSharded, c.Mode)
	}
	if c.AutoTune && c.Mode != ModeSharded && c.Mode != ModeShardedTime {
		return c, fmt.Errorf("pimtree: auto-tuning requires %s or %s mode (got %s)", ModeSharded, ModeShardedTime, c.Mode)
	}
	if err := c.Durability.validate(c.Mode); err != nil {
		return c, err
	}
	if c.DiscardMatches && c.OnMatch != nil {
		return c, fmt.Errorf("pimtree: DiscardMatches with OnMatch set (pick a side)")
	}
	return c, nil
}

// Engine lifecycle states.
const (
	stateOpen int32 = iota
	stateAborted
	stateClosing
	stateClosed
)

// Engine is a long-lived streaming band-join session over one of the four
// execution runtimes. Open starts it; Push/PushTimed/PushBatch feed it
// incrementally; matches stream out through OnMatch (push side) and
// Matches (pull side); Stats snapshots progress mid-stream; Drain flushes
// it to a deterministic quiescent point; Close tears it down and returns
// the final statistics.
//
// Push, PushTimed, PushBatch, Drain, and Close must be called from one
// goroutine (the producer). Stats, Matches, Tuning, and Reconfigure are safe
// from any goroutine: the control plane serializes against the producer on
// an internal mutex, so an admin endpoint or the auto-tuner can reshape the
// engine while the producer keeps pushing.
type Engine struct {
	cfg  Config
	mode Mode

	// prodMu serializes the producer-side operations (pushes, Drain, Close
	// teardown) with live reconfiguration, which may arrive from any
	// goroutine. Producers are documented single-goroutine, so the mutex is
	// uncontended — and allocation-free — until the control plane acts.
	prodMu sync.Mutex
	// tunMu guards cfg against concurrent Tuning readers while Reconfigure
	// (under prodMu) swaps it.
	tunMu     sync.Mutex
	reconfigs atomic.Int64 // applied Reconfigure deltas
	decisions atomic.Int64 // controller decisions applied by the auto-tuner
	tuner     *tuner       // nil unless Config.AutoTune

	serial *join.Streaming
	shared *join.Shared
	router *shard.Router
	wlog   *wal.Log // durability layer; nil unless Config.Durability.Dir

	onMatch func(Match)
	pull    *matchQueue

	tuples        atomic.Uint64
	serialMatches atomic.Uint64
	lastTS        uint64 // strict-mode timestamp guard (producer goroutine)
	start         time.Time
	gcBase        metrics.GCSnapshot // GC counters at Open; Stats/Close diff against it

	// sharedBuf is PushBatch's ModeShared conversion buffer, owned by the
	// producer goroutine and reused across calls so steady-state batch
	// ingestion does not allocate.
	sharedBuf []stream.Arrival

	state atomic.Int32
	bg    chan struct{} // abandoned Drain/Close teardown, awaited by Close
	final RunStats      // set before state becomes stateClosed
}

// Open validates the Config, builds the selected runtime, starts its
// workers, and returns the session handle. With Durability configured it
// first recovers any state a previous session left in the WAL directory, so
// the new session resumes the durable prefix.
func Open(cfg Config) (*Engine, error) {
	return openWithWALFS(cfg, nil)
}

// openWithWALFS is Open with the WAL filesystem injectable — the seam the
// crash-injection tests use to run recovery against an in-memory filesystem
// with deterministic crash points. nil selects the real filesystem.
func openWithWALFS(cfg Config, wfs wal.FS) (*Engine, error) {
	cc, err := cfg.validate()
	if err != nil {
		return nil, err
	}
	e := &Engine{cfg: cc, mode: cc.Mode, onMatch: cc.OnMatch}
	if !cc.DiscardMatches {
		e.pull = newMatchQueue()
	}
	var sink join.MatchSink
	if e.pull != nil || e.onMatch != nil {
		sink = e.dispatch
	}

	switch cc.Mode {
	case ModeSerial:
		scfg := join.SerialConfig{
			WR:          cc.WindowR,
			WS:          cc.WindowS,
			Self:        cc.Self,
			Band:        join.Band{Diff: cc.Diff},
			Index:       cc.Backend.kind(),
			ChainLength: cc.ChainLength,
			IM:          core.IMTreeConfig{MergeRatio: cc.Index.MergeRatio},
			PIM: core.PIMTreeConfig{
				MergeRatio:     cc.Index.MergeRatio,
				InsertionDepth: cc.Index.InsertionDepth,
			},
			Sink: sink,
		}
		e.serial = join.NewStreaming(scfg)
	case ModeShared:
		shcfg := join.SharedConfig{
			Threads:       cc.Threads,
			TaskSize:      cc.TaskSize,
			WR:            cc.WindowR,
			WS:            cc.WindowS,
			Self:          cc.Self,
			Band:          join.Band{Diff: cc.Diff},
			Index:         cc.Backend.kind(),
			BlockingMerge: cc.BlockingMerge,
			PIM: core.PIMTreeConfig{
				MergeRatio:     parallelMergeRatio(cc.Index.MergeRatio),
				InsertionDepth: cc.Index.InsertionDepth,
			},
			Sink: sink,
		}
		if cc.RecordLatency {
			shcfg.Latency = metrics.NewLatencyRecorder(1<<16, 4)
		}
		e.shared = join.StartShared(shcfg, cc.QueueCapacity)
	case ModeSharded, ModeShardedTime:
		rcfg := shard.Config{
			Shards:    defaultShards(cc.Shards),
			BatchSize: cc.BatchSize,
			Self:      cc.Self,
			Band:      join.Band{Diff: cc.Diff},
			Index:     cc.Backend.kind(),
			IM:        core.IMTreeConfig{MergeRatio: cc.Index.MergeRatio},
			PIM: core.PIMTreeConfig{
				MergeRatio:     cc.Index.MergeRatio,
				InsertionDepth: cc.Index.InsertionDepth,
			},
			Part: cc.Partitioner,
			Sink: sink,
		}
		if cc.Mode == ModeShardedTime {
			rcfg.Timed = true
			rcfg.Span = cc.Span
			rcfg.MaxLive = cc.MaxLive
			rcfg.Slack = cc.Slack
			rcfg.Late = cc.LatePolicy.oooPolicy()
			rcfg.OnLate = oooLateAdapter(cc.OnLate)
		} else {
			rcfg.WR = cc.WindowR
			rcfg.WS = cc.WindowS
			rcfg.Adaptive = cc.Adaptive
			rcfg.Rebalance = shard.Policy{
				MaxRatio:   cc.Rebalance.MaxRatio,
				MinGap:     cc.Rebalance.MinGap,
				SampleSize: cc.Rebalance.SampleSize,
				ForceEvery: cc.Rebalance.ForceEvery,
			}
		}
		var wst *wal.State
		if cc.Durability.enabled() {
			wlog, st, werr := wal.Open(walOptions(cc, wfs))
			if werr != nil {
				return nil, fmt.Errorf("pimtree: opening WAL: %w", werr)
			}
			e.wlog = wlog
			wst = st
			rcfg.WAL = wlog
			rcfg.SnapshotEvery = snapshotCadence(cc.Durability.SnapshotEvery)
		}
		e.router = shard.NewRouter(rcfg, cc.QueueCapacity)
		// Replay before anything can push: the workers are parked, so the
		// restored window is published by the first batch send.
		e.router.Restore(wst)
	}
	e.start = time.Now()
	e.gcBase = metrics.ReadGC()
	if cc.AutoTune {
		e.tuner = startTuner(e, cc.Tune)
	}
	return e, nil
}

// parallelMergeRatio applies Figure 9a's finding: under concurrency the
// merge ratio defaults to 1.
func parallelMergeRatio(m float64) float64 {
	if m == 0 {
		return 1
	}
	return m
}

func defaultShards(n int) int {
	if n > 0 {
		return n
	}
	return runtime.GOMAXPROCS(0)
}

// Mode returns the resolved execution mode.
func (e *Engine) Mode() Mode { return e.mode }

// dispatch fans one propagated match out to both output sides.
func (e *Engine) dispatch(s uint8, probe, match uint64) {
	m := Match{ProbeStream: StreamID(s), ProbeSeq: probe, MatchSeq: match}
	if e.onMatch != nil {
		e.onMatch(m)
	}
	if e.pull != nil {
		e.pull.push(m)
	}
}

func (e *Engine) pushable() error {
	switch e.state.Load() {
	case stateOpen:
		return nil
	case stateAborted:
		return ErrAborted
	default:
		return ErrClosed
	}
}

// lockProducer acquires the producer mutex and re-checks liveness under it:
// the engine may have started closing or aborted while the caller was parked
// behind a reconfiguration or an abandoned drain. Callers fast-fail on
// pushable before locking, so an aborted engine rejects pushes promptly
// instead of queueing them on the mutex.
func (e *Engine) lockProducer() error {
	e.prodMu.Lock()
	if err := e.pushable(); err != nil {
		e.prodMu.Unlock()
		return err
	}
	return nil
}

// Push feeds one count-window tuple. In the parallel modes it may block on
// backpressure (QueueCapacity); in ModeSerial its matches are dispatched
// before it returns.
func (e *Engine) Push(s StreamID, key uint32) error {
	if err := e.pushable(); err != nil {
		return err
	}
	if e.mode == ModeShardedTime {
		return fmt.Errorf("pimtree: %s mode requires PushTimed (tuples carry event timestamps)", e.mode)
	}
	if err := e.lockProducer(); err != nil {
		return err
	}
	e.pushCount(stream.Arrival{Stream: uint8(s), Key: key})
	e.prodMu.Unlock()
	return nil
}

func (e *Engine) pushCount(a stream.Arrival) {
	switch e.mode {
	case ModeSerial:
		e.pushSerial(a)
	case ModeShared:
		e.shared.Push(a)
	default:
		e.router.Push(a)
	}
}

// pushSerial is the serial-mode push core, shared with the Join wrapper: the
// parallel modes read their runtime's own counters, so only serial mode
// maintains the engine-side tuple/match accounting.
func (e *Engine) pushSerial(a stream.Arrival) int {
	n := e.serial.Push(a)
	e.serialMatches.Add(uint64(n))
	e.tuples.Add(1)
	return n
}

// PushTimed feeds one time-window tuple (ModeShardedTime). With a LatePolicy
// other than LateNone the tuple enters the reorder buffer and joins once the
// watermark releases it; in strict mode a timestamp regression is rejected
// with an error wrapping ErrUnordered.
func (e *Engine) PushTimed(s StreamID, key uint32, ts uint64) error {
	if err := e.pushable(); err != nil {
		return err
	}
	if e.mode != ModeShardedTime {
		return fmt.Errorf("pimtree: PushTimed requires %s mode (%s windows are count-based)", ModeShardedTime, e.mode)
	}
	if e.cfg.LatePolicy == LateNone {
		if ts < e.lastTS {
			return errNotSorted()
		}
		e.lastTS = ts
	}
	if err := e.lockProducer(); err != nil {
		return err
	}
	e.router.PushTimed(uint8(s), key, ts)
	e.prodMu.Unlock()
	return nil
}

// PushBatch feeds a batch of tuples, amortizing per-push overhead (one queue
// handoff in ModeShared). In ModeShardedTime the arrivals' TS fields carry
// the event timestamps and strict mode validates the whole batch before
// admitting any of it.
func (e *Engine) PushBatch(batch []Arrival) error {
	if err := e.pushable(); err != nil {
		return err
	}
	if err := e.lockProducer(); err != nil {
		return err
	}
	defer e.prodMu.Unlock()
	switch e.mode {
	case ModeShardedTime:
		if e.cfg.LatePolicy == LateNone {
			last := e.lastTS
			for _, a := range batch {
				if a.TS < last {
					return errNotSorted()
				}
				last = a.TS
			}
			e.lastTS = last
		}
		for _, a := range batch {
			e.router.PushTimed(uint8(a.Stream), a.Key, a.TS)
		}
	case ModeShared:
		// Convert in bounded chunks: a full-size intermediate slice would
		// double the transient arrival memory of large batch runs for no
		// gain (the ring copy happens either way, and one queue handoff per
		// chunk amortizes the lock just as well).
		const chunk = 4096
		if cap(e.sharedBuf) == 0 {
			e.sharedBuf = make([]stream.Arrival, 0, chunk)
		}
		buf := e.sharedBuf
		for lo := 0; lo < len(batch); lo += chunk {
			hi := min(lo+chunk, len(batch))
			buf = buf[:0]
			for _, a := range batch[lo:hi] {
				buf = append(buf, stream.Arrival{Stream: uint8(a.Stream), Key: a.Key})
			}
			e.shared.PushBatch(buf)
		}
	default:
		for _, a := range batch {
			e.pushCount(stream.Arrival{Stream: uint8(a.Stream), Key: a.Key})
		}
	}
	return nil
}

// Matches returns the pull side of the session: an iterator over matches in
// propagation (arrival) order. The call arms collection — matches
// propagated before it are not replayed, so arm the iterator before pushing
// to observe everything. The iterator blocks awaiting further matches while
// the engine is open and ends once the engine is closed and the buffered
// matches are consumed; consume it from its own goroutine (or after Close).
// Breaking out of the loop disarms collection and drops the buffer (an
// abandoned iterator must not accumulate matches forever); a later Matches
// call re-arms from that point. It yields nothing when the engine was
// opened with DiscardMatches.
func (e *Engine) Matches() iter.Seq[Match] {
	if e.pull == nil {
		return func(func(Match) bool) {}
	}
	e.pull.arm()
	return func(yield func(Match) bool) {
		for {
			m, ok := e.pull.next()
			if !ok {
				return
			}
			if !yield(m) {
				e.pull.disarm()
				return
			}
		}
	}
}

// Stats returns a live snapshot: tuples admitted by the runtime (in
// ModeShardedTime this excludes tuples still buffered for reordering or
// dropped as late, matching the accounting Close finalizes), matches
// propagated so far (trailing pushes by the in-flight tuples), wall time
// since Open, and — in the sharded modes — the adaptive layer's progress
// (Rebalances, MigratedTuples, Imbalance), so the rebalancer is observable
// mid-stream, not only after Close. The remaining maintenance counters
// (Merges, late accounting, latency) are finalized by Close; after Close,
// Stats returns the final statistics. Safe from any goroutine.
func (e *Engine) Stats() RunStats {
	if e.state.Load() == stateClosed {
		return e.final
	}
	var st RunStats
	switch e.mode {
	case ModeSerial:
		st.Tuples = int(e.tuples.Load())
		st.Matches = e.serialMatches.Load()
	case ModeShared:
		st.Tuples = e.shared.Tuples()
		st.Matches = e.shared.Matches()
	default:
		st.Tuples = e.router.Tuples()
		st.Matches = e.router.Matches()
		st.Rebalances = e.router.Rebalances()
		st.MigratedTuples = e.router.Migrated()
		st.Imbalance = shardImbalance(e.router.LoadSnapshot())
	}
	st.Elapsed = time.Since(e.start)
	st.Mtps = metrics.Mtps(st.Tuples, st.Elapsed)
	e.fillGC(&st)
	return st
}

// fillGC populates the GC-pressure fields of a RunStats from the delta
// between the current runtime counters and the snapshot taken at Open.
func (e *Engine) fillGC(st *RunStats) {
	d := metrics.ReadGC().Sub(e.gcBase)
	st.AllocObjects = d.AllocObjects
	st.AllocBytes = d.AllocBytes
	st.GCCycles = d.GCCycles
	st.GCPauseTotal = time.Duration(d.GCPauseSecs * float64(time.Second))
	if st.Tuples > 0 {
		st.AllocsPerTuple = float64(d.AllocObjects) / float64(st.Tuples)
		st.BytesPerTuple = float64(d.AllocBytes) / float64(st.Tuples)
	}
}

// ShardLoads returns each shard's live load snapshot in the sharded modes
// (nil elsewhere): inserts and probe fan-ins routed since the last rebalance
// epoch (populated only under adaptive rebalancing), pending queue depth,
// and resident window size. Safe from any goroutine; the snapshot is weakly
// consistent across shards.
func (e *Engine) ShardLoads() []ShardLoad {
	if e.router == nil {
		return nil
	}
	snap := e.router.LoadSnapshot()
	out := make([]ShardLoad, len(snap))
	for i, s := range snap {
		out[i] = ShardLoad{Inserts: s.Inserts, Probes: s.Probes, QueueDepth: s.QueueDepth, QueueHW: s.QueueHW, Resident: s.Resident}
	}
	return out
}

// EmitsMatches reports whether the session materializes individual matches —
// false when opened with Config.DiscardMatches, in which case Matches yields
// nothing and only the match count is maintained. The serving layer consults
// it to reject match subscriptions a discarding engine could never satisfy.
func (e *Engine) EmitsMatches() bool { return e.pull != nil }

// shardImbalance folds a shard load snapshot into the single imbalance
// ratio exposed by RunStats: over routed ops when the adaptive accounting is
// live, otherwise over resident window tuples (always maintained).
func shardImbalance(snap []shard.ShardLoad) float64 {
	routed := make([]uint64, len(snap))
	resident := make([]uint64, len(snap))
	anyRouted := false
	for i, s := range snap {
		routed[i] = s.Inserts + s.Probes
		if routed[i] > 0 {
			anyRouted = true
		}
		resident[i] = uint64(s.Resident)
	}
	if anyRouted {
		return metrics.Imbalance(routed)
	}
	return metrics.Imbalance(resident)
}

// Drain flushes the session to a deterministic quiescent point and blocks
// until every pushed tuple's matches have been propagated: pending shard
// batches are flushed, in-flight rebalance epochs complete, and in
// ModeShardedTime the reorder buffer is flushed — which advances the
// watermark past everything buffered, so strictly older tuples pushed
// afterwards are late. The session stays usable.
//
// If ctx is done first, Drain returns its error. In ModeShared the session
// simply keeps running (the drain was only a wait); in the sharded modes the
// abandoned drain keeps flushing in the background and the engine becomes
// aborted: further pushes fail with ErrAborted and only Close is permitted.
func (e *Engine) Drain(ctx context.Context) error {
	if err := e.pushable(); err != nil {
		return err
	}
	switch e.mode {
	case ModeSerial:
		return nil // synchronous: nothing is ever in flight
	case ModeShared:
		return e.shared.Drain(ctx)
	default:
		if err := e.lockProducer(); err != nil {
			return err
		}
		if ctx.Done() == nil {
			// Un-cancelable context (e.g. context.Background()): drain
			// synchronously instead of spawning the watchdog goroutine, so a
			// push-drain steady state stays allocation-free.
			e.router.Drain()
			e.prodMu.Unlock()
			return nil
		}
		done := make(chan struct{})
		go func() {
			// The drain goroutine owns the producer mutex until the router is
			// actually quiescent — an abandoned drain is still a producer-side
			// operation in flight, and Reconfigure must keep waiting for it.
			defer close(done)
			e.router.Drain()
			e.prodMu.Unlock()
		}()
		select {
		case <-done:
			return nil
		case <-ctx.Done():
			// Both can be ready at once and select picks randomly; a drain
			// that actually completed must not brick the session.
			select {
			case <-done:
				return nil
			default:
			}
			e.bg = done
			e.state.Store(stateAborted)
			return fmt.Errorf("pimtree: drain abandoned: %w", ctx.Err())
		}
	}
}

// Close drains and tears the session down: remaining queued tuples are
// processed, the reorder buffer is flushed, workers exit, and the final
// run statistics are returned. Closing an already-closed engine returns
// ErrClosed.
//
// If ctx is done before the teardown completes, Close returns its error;
// the teardown keeps running in the background, the engine counts as
// closed, and the final statistics are lost.
func (e *Engine) Close(ctx context.Context) (RunStats, error) {
	for {
		st := e.state.Load()
		if st == stateClosing || st == stateClosed {
			return RunStats{}, ErrClosed
		}
		if e.state.CompareAndSwap(st, stateClosing) {
			break
		}
	}
	if e.tuner != nil {
		// Stop the auto-tuner first: a reconfiguration in flight completes
		// (the workers are still up), and no new one starts against the
		// teardown.
		e.tuner.stop()
	}
	done := make(chan struct{})
	var st join.Stats
	go func() {
		defer close(done)
		if e.bg != nil {
			// An abandoned Drain is still flushing; the runtime is
			// single-producer, so wait for it before tearing down.
			<-e.bg
		}
		// Teardown is a producer-side operation: taking the mutex waits out
		// any reconfiguration (or late push) already holding it.
		e.prodMu.Lock()
		defer e.prodMu.Unlock()
		switch e.mode {
		case ModeSerial:
			m, t := e.serial.Merges()
			st = join.Stats{
				Tuples:    int(e.tuples.Load()),
				Matches:   e.serialMatches.Load(),
				Merges:    m,
				MergeTime: t,
			}
		case ModeShared:
			st = e.shared.Close()
		default:
			st = e.router.Close()
		}
		if e.pull != nil {
			e.pull.close()
		}
	}()
	select {
	case <-done:
	case <-ctx.Done():
		// Both can be ready at once and select picks randomly; a teardown
		// that actually finished must not be reported abandoned (that
		// would discard the final statistics forever).
		select {
		case <-done:
		default:
			return RunStats{}, fmt.Errorf("pimtree: close abandoned: %w", ctx.Err())
		}
	}
	e.final = e.finish(st)
	e.state.Store(stateClosed)
	return e.final, nil
}

// finish converts the runtime's final statistics into the public RunStats.
func (e *Engine) finish(st join.Stats) RunStats {
	elapsed := st.Elapsed
	if elapsed == 0 {
		elapsed = time.Since(e.start)
	}
	rs := RunStats{
		Tuples:              st.Tuples,
		Matches:             st.Matches,
		Elapsed:             elapsed,
		Mtps:                metrics.Mtps(st.Tuples, elapsed),
		Merges:              st.Merges,
		MergeTime:           st.MergeTime,
		MeanMicros:          st.Latency.MeanMicros,
		P99Micros:           st.Latency.P99Micros,
		Rebalances:          st.Rebalances,
		MigratedTuples:      st.Migrated,
		LateDropped:         st.LateDropped,
		MaxObservedDisorder: st.MaxDisorder,
	}
	if e.router != nil {
		rs.Imbalance = shardImbalance(e.router.LoadSnapshot())
	}
	e.fillGC(&rs)
	return rs
}

// matchQueue is the unbounded FIFO behind the pull side. Producers
// (propagation goroutines) never block on it — bounding it would deadlock
// ModeSerial, whose producer and consumer can share a goroutine — so it
// only buffers while armed: breaking out of the iterator disarms it, which
// is what keeps an abandoned pull side from growing forever.
type matchQueue struct {
	mu     sync.Mutex
	cond   *sync.Cond
	armed  atomic.Bool
	buf    []Match
	head   int
	closed bool
}

func newMatchQueue() *matchQueue {
	q := &matchQueue{}
	q.cond = sync.NewCond(&q.mu)
	return q
}

func (q *matchQueue) arm() {
	if q.armed.Swap(true) {
		return
	}
	// Fresh collection window: drop any residue a disarmed consumer (or a
	// push that raced the disarm) left behind.
	q.mu.Lock()
	q.buf = q.buf[:0]
	q.head = 0
	q.mu.Unlock()
}

// disarm stops collection and drops the buffer. A push that loaded armed
// just before the store may still append one match; it is bounded residue
// that the next arm clears.
func (q *matchQueue) disarm() {
	q.armed.Store(false)
	q.mu.Lock()
	q.buf = q.buf[:0]
	q.head = 0
	q.mu.Unlock()
}

func (q *matchQueue) push(m Match) {
	if !q.armed.Load() {
		return
	}
	q.mu.Lock()
	q.buf = append(q.buf, m)
	q.cond.Signal()
	q.mu.Unlock()
}

func (q *matchQueue) close() {
	q.mu.Lock()
	q.closed = true
	q.cond.Broadcast()
	q.mu.Unlock()
}

func (q *matchQueue) next() (Match, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	for q.head >= len(q.buf) && !q.closed {
		q.cond.Wait()
	}
	if q.head < len(q.buf) {
		m := q.buf[q.head]
		q.head++
		switch {
		case q.head == len(q.buf):
			q.buf = q.buf[:0]
			q.head = 0
		case q.head >= 1024 && q.head*2 >= len(q.buf):
			// Compact the consumed prefix: a long-lived session whose
			// consumer stays slightly behind would otherwise grow the
			// buffer with every match ever emitted.
			n := copy(q.buf, q.buf[q.head:])
			q.buf = q.buf[:n]
			q.head = 0
		}
		return m, true
	}
	return Match{}, false
}
