package pimtree

import (
	"fmt"

	"pimtree/internal/wal"
)

// Durability configures the write-ahead log behind the sharded modes:
// setting Dir makes the window state durable. Every shard worker appends
// each applied insert to its own log lane (fsync-batched), the router writes
// periodic compacting snapshots of the live window, and a crashed process
// reopened on the same directory recovers a multiset-identical window —
// the largest per-stream prefix of the admitted input that reached disk —
// and resumes from it (see internal/wal for the on-disk contract).
//
// Matches emitted before a crash are not replayed: match delivery is
// at-most-once across a restart; the recovered window state itself is exact.
//
// Requires ModeSharded or ModeShardedTime; with ModeAuto, setting Dir
// selects a sharded mode like the other sharded knobs.
type Durability struct {
	// Dir is the WAL directory (created if missing). Empty disables
	// durability — the default, and the configuration every steady-state
	// allocation pin is measured against.
	Dir string
	// FsyncEvery batches lane fsyncs: each shard lane syncs its segment
	// after this many appended records (default 64). 1 syncs every record —
	// the strongest contract and the slowest. Drain always syncs every lane
	// regardless, making it the deterministic durability checkpoint.
	FsyncEvery int
	// SnapshotEvery is the compacting-snapshot cadence in routed arrivals
	// (default 65536; negative disables snapshots, letting segments grow
	// until Close). Each snapshot rewrites the live window and prunes the
	// log segments it obsoletes, bounding recovery time and disk usage.
	SnapshotEvery int
}

// enabled reports whether the configuration turns durability on.
func (d Durability) enabled() bool { return d.Dir != "" }

// validate rejects knobs without a directory and non-sharded modes.
func (d Durability) validate(m Mode) error {
	if !d.enabled() {
		if d.FsyncEvery != 0 || d.SnapshotEvery != 0 {
			return fmt.Errorf("pimtree: Durability.FsyncEvery/SnapshotEvery require Durability.Dir")
		}
		return nil
	}
	if m != ModeSharded && m != ModeShardedTime {
		return fmt.Errorf("pimtree: Durability requires %s or %s mode (got %s)", ModeSharded, ModeShardedTime, m)
	}
	return nil
}

// defaultSnapshotEvery is the snapshot cadence when the Config leaves it 0.
const defaultSnapshotEvery = 1 << 16

// snapshotCadence normalizes Durability.SnapshotEvery: 0 selects the
// default, negative disables.
func snapshotCadence(n int) int {
	if n == 0 {
		return defaultSnapshotEvery
	}
	if n < 0 {
		return 0
	}
	return n
}

// WALStats is a point-in-time snapshot of the durability layer's counters.
// Zero (with Enabled false) when the engine runs without a WAL.
type WALStats struct {
	Enabled         bool   // durability configured for this engine
	AppendedRecords uint64 // records appended across all lanes
	AppendedBytes   uint64 // framed bytes written to segment files
	Fsyncs          uint64 // segment and snapshot fsyncs issued
	Snapshots       uint64 // compacting snapshots written
	SnapshotNanos   uint64 // cumulative wall time writing snapshots
	ReplayRecords   uint64 // records read during recovery at Open
	ReplayNanos     uint64 // wall time of recovery at Open
	Truncations     uint64 // corruption events survived (truncated lanes, rejected snapshots)
	WriteErrors     uint64 // appends/syncs abandoned after a filesystem error
}

// WALStats returns the durability layer's counters. Safe from any goroutine.
func (e *Engine) WALStats() WALStats {
	if e.wlog == nil {
		return WALStats{}
	}
	s := e.wlog.Stats().Snapshot()
	return WALStats{
		Enabled:         true,
		AppendedRecords: s.AppendedRecords,
		AppendedBytes:   s.AppendedBytes,
		Fsyncs:          s.Fsyncs,
		Snapshots:       s.Snapshots,
		SnapshotNanos:   s.SnapshotNanos,
		ReplayRecords:   s.ReplayRecords,
		ReplayNanos:     s.ReplayNanos,
		Truncations:     s.Truncations,
		WriteErrors:     s.WriteErrors,
	}
}

// walOptions translates a validated Config into the WAL's window-shape
// options (recovery rebuilds eviction frontiers from them).
func walOptions(cc Config, fs wal.FS) wal.Options {
	opts := wal.Options{
		Dir:        cc.Durability.Dir,
		FsyncEvery: cc.Durability.FsyncEvery,
		FS:         fs,
		Self:       cc.Self,
	}
	if cc.Mode == ModeShardedTime {
		opts.Timed = true
		opts.Span = cc.Span
		opts.Slack = cc.Slack
	} else {
		opts.WR = uint64(cc.WindowR)
		ws := cc.WindowS
		if cc.Self {
			ws = cc.WindowR
		}
		opts.WS = uint64(ws)
	}
	return opts
}
