// Engine lifecycle and unified-validation tests: every constructor routes
// through the same Config.validate, so equivalent misconfigurations must
// produce identical error text and the named error conditions must be
// matchable with errors.Is across the whole API surface.
package pimtree_test

import (
	"context"
	"errors"
	"strings"
	"sync"
	"testing"
	"time"

	"pimtree"
)

// TestValidationUniform is the table-driven sweep over every constructor:
// each row lists the same violation expressed through each entry point; all
// returned errors must be non-nil and share one text.
func TestValidationUniform(t *testing.T) {
	timed := []pimtree.TimedArrival{{Stream: pimtree.R, Key: 1, TS: 5}}
	rows := []struct {
		name string
		errs map[string]error
	}{
		{
			name: "zero WindowR",
			errs: map[string]error{
				"NewJoin":     errOf2(pimtree.NewJoin(pimtree.JoinOptions{WindowS: 4})),
				"RunParallel": errOf(pimtree.RunParallel(nil, pimtree.ParallelOptions{WindowS: 4})),
				"RunSharded": errOf(pimtree.RunSharded(nil, pimtree.ShardedOptions{
					JoinOptions: pimtree.JoinOptions{WindowS: 4},
				})),
				"Open": errOf2(pimtree.Open(pimtree.Config{Mode: pimtree.ModeSharded, WindowS: 4})),
			},
		},
		{
			name: "zero WindowS",
			errs: map[string]error{
				"NewJoin":     errOf2(pimtree.NewJoin(pimtree.JoinOptions{WindowR: 4})),
				"RunParallel": errOf(pimtree.RunParallel(nil, pimtree.ParallelOptions{WindowR: 4})),
				"RunSharded": errOf(pimtree.RunSharded(nil, pimtree.ShardedOptions{
					JoinOptions: pimtree.JoinOptions{WindowR: 4},
				})),
				"Open": errOf2(pimtree.Open(pimtree.Config{Mode: pimtree.ModeShared, WindowR: 4})),
			},
		},
		{
			name: "zero Span",
			errs: map[string]error{
				"NewTimeJoin":     errOf2(pimtree.NewTimeJoin(pimtree.TimeJoinOptions{})),
				"RunParallelTime": errOf(pimtree.RunParallelTime(nil, pimtree.ParallelTimeOptions{MaxLive: 8})),
				"RunShardedTime":  errOf(pimtree.RunShardedTime(nil, pimtree.ShardedTimeOptions{MaxLive: 8})),
				"Open":            errOf2(pimtree.Open(pimtree.Config{Mode: pimtree.ModeShardedTime, MaxLive: 8})),
			},
		},
		{
			name: "zero MaxLive",
			errs: map[string]error{
				"RunParallelTime": errOf(pimtree.RunParallelTime(nil, pimtree.ParallelTimeOptions{Span: 10})),
				"RunShardedTime":  errOf(pimtree.RunShardedTime(nil, pimtree.ShardedTimeOptions{Span: 10})),
				"Open":            errOf2(pimtree.Open(pimtree.Config{Mode: pimtree.ModeShardedTime, Span: 10})),
			},
		},
		{
			name: "slack without policy",
			errs: map[string]error{
				"NewTimeJoin": errOf2(pimtree.NewTimeJoin(pimtree.TimeJoinOptions{Span: 10, Slack: 5})),
				"RunParallelTime": errOf(pimtree.RunParallelTime(nil, pimtree.ParallelTimeOptions{
					Span: 10, MaxLive: 8, Slack: 5,
				})),
				"RunShardedTime": errOf(pimtree.RunShardedTime(nil, pimtree.ShardedTimeOptions{
					Span: 10, MaxLive: 8, Slack: 5,
				})),
				"Open": errOf2(pimtree.Open(pimtree.Config{
					Mode: pimtree.ModeShardedTime, Span: 10, MaxLive: 8, Slack: 5,
				})),
			},
		},
		{
			name: "LateCall without OnLate",
			errs: map[string]error{
				"NewTimeJoin": errOf2(pimtree.NewTimeJoin(pimtree.TimeJoinOptions{
					Span: 10, LatePolicy: pimtree.LateCall,
				})),
				"RunShardedTime": errOf(pimtree.RunShardedTime(nil, pimtree.ShardedTimeOptions{
					Span: 10, MaxLive: 8, LatePolicy: pimtree.LateCall,
				})),
				"Open": errOf2(pimtree.Open(pimtree.Config{
					Mode: pimtree.ModeShardedTime, Span: 10, MaxLive: 8, LatePolicy: pimtree.LateCall,
				})),
			},
		},
		{
			name: "unordered strict input",
			errs: map[string]error{
				"RunParallelTime": errOf(pimtree.RunParallelTime(append([]pimtree.TimedArrival{{TS: 9}}, timed...),
					pimtree.ParallelTimeOptions{Span: 10, MaxLive: 8})),
				"RunShardedTime": errOf(pimtree.RunShardedTime(append([]pimtree.TimedArrival{{TS: 9}}, timed...),
					pimtree.ShardedTimeOptions{Span: 10, MaxLive: 8})),
			},
		},
	}
	for _, row := range rows {
		t.Run(row.name, func(t *testing.T) {
			var text string
			for name, err := range row.errs {
				if err == nil {
					t.Fatalf("%s accepted the misconfiguration", name)
				}
				if text == "" {
					text = err.Error()
				} else if err.Error() != text {
					t.Fatalf("non-uniform error text:\n  %s\n  %s: %s", text, name, err)
				}
			}
		})
	}
}

func errOf(_ pimtree.RunStats, err error) error { return err }
func errOf2[T any](_ T, err error) error        { return err }

// TestUnsupportedBackendNamed pins satellite #2: every unsupported
// mode × backend pair fails with an error wrapping ErrUnsupportedBackend —
// RunParallel no longer silently narrows to PIM-Tree.
func TestUnsupportedBackendNamed(t *testing.T) {
	cases := []struct {
		name string
		err  error
	}{
		{"RunParallel/IMTree", errOf(pimtree.RunParallel(nil, pimtree.ParallelOptions{
			WindowR: 4, WindowS: 4, Backend: pimtree.IMTree,
		}))},
		{"RunParallel/BPlusTree", errOf(pimtree.RunParallel(nil, pimtree.ParallelOptions{
			WindowR: 4, WindowS: 4, Backend: pimtree.BPlusTree,
		}))},
		{"RunParallel/BChain", errOf(pimtree.RunParallel(nil, pimtree.ParallelOptions{
			WindowR: 4, WindowS: 4, Backend: pimtree.BChain,
		}))},
		{"RunSharded/BChain", errOf(pimtree.RunSharded(nil, pimtree.ShardedOptions{
			JoinOptions: pimtree.JoinOptions{WindowR: 4, WindowS: 4, Backend: pimtree.BChain},
		}))},
		{"RunShardedTime/IBChain", errOf(pimtree.RunShardedTime(nil, pimtree.ShardedTimeOptions{
			Span: 10, MaxLive: 8, Backend: pimtree.IBChain,
		}))},
		{"Open/shared/IMTree", errOf2(pimtree.Open(pimtree.Config{
			Mode: pimtree.ModeShared, WindowR: 4, WindowS: 4, Backend: pimtree.IMTree,
		}))},
	}
	for _, c := range cases {
		if c.err == nil {
			t.Fatalf("%s: unsupported backend accepted", c.name)
		}
		if !errors.Is(c.err, pimtree.ErrUnsupportedBackend) {
			t.Fatalf("%s: error %v does not wrap ErrUnsupportedBackend", c.name, c.err)
		}
	}
	// The supported pairs must still open. Threads is pinned because the
	// Bw-Tree's eager-delete runtime requires windows > 2x the in-flight
	// bound (threads*task+64), which GOMAXPROCS-many workers could exceed.
	for _, b := range []pimtree.Backend{pimtree.PIMTree, pimtree.BwTree} {
		st, err := pimtree.RunParallel(nil, pimtree.ParallelOptions{
			WindowR: 256, WindowS: 256, Backend: b, Threads: 2,
		})
		if err != nil {
			t.Fatalf("RunParallel with %s: %v", b, err)
		}
		if st.Tuples != 0 {
			t.Fatalf("empty run reported %d tuples", st.Tuples)
		}
	}
	// The historical UseBwTree flag still selects the Bw-Tree.
	if _, err := pimtree.RunParallel(nil, pimtree.ParallelOptions{
		WindowR: 256, WindowS: 256, UseBwTree: true, Threads: 2,
	}); err != nil {
		t.Fatalf("UseBwTree compatibility: %v", err)
	}
}

func TestEngineAutoMode(t *testing.T) {
	cases := []struct {
		name string
		cfg  pimtree.Config
		want pimtree.Mode
	}{
		{"time window", pimtree.Config{Span: 10, MaxLive: 8}, pimtree.ModeShardedTime},
		{"chained backend", pimtree.Config{WindowR: 4, WindowS: 4, Backend: pimtree.BChain}, pimtree.ModeSerial},
		{"count windows", pimtree.Config{WindowR: 4, WindowS: 4, Shards: 2}, pimtree.ModeSharded},
		// Shared-only knobs steer auto-resolution to the shared runtime:
		// asking for a thread pool (or latency sampling) must not silently
		// produce a sharded run.
		{"shared knobs", pimtree.Config{WindowR: 512, WindowS: 512, Threads: 2, RecordLatency: true}, pimtree.ModeShared},
	}
	for _, c := range cases {
		e, err := pimtree.Open(c.cfg)
		if err != nil {
			t.Fatalf("%s: %v", c.name, err)
		}
		if e.Mode() != c.want {
			t.Fatalf("%s: resolved %s, want %s", c.name, e.Mode(), c.want)
		}
		if _, err := e.Close(context.Background()); err != nil {
			t.Fatal(err)
		}
	}
}

// TestEngineValidationGuards pins the Open-never-panics contract and the
// cross-mode knob rejections added alongside it.
func TestEngineValidationGuards(t *testing.T) {
	// Bw-Tree windows too small for the in-flight bound: a validation
	// error, not the runtime's panic.
	if _, err := pimtree.Open(pimtree.Config{
		Mode: pimtree.ModeShared, WindowR: 16, WindowS: 16,
		Backend: pimtree.BwTree, Threads: 8,
	}); err == nil {
		t.Fatal("tiny Bw-Tree windows accepted in shared mode")
	}
	// Out-of-order knobs act on event time; count modes must reject them
	// rather than silently ignore a disorder tolerance.
	for name, cfg := range map[string]pimtree.Config{
		"slack":  {Mode: pimtree.ModeSharded, WindowR: 8, WindowS: 8, Slack: 100},
		"policy": {Mode: pimtree.ModeSerial, WindowR: 8, WindowS: 8, LatePolicy: pimtree.LateDrop},
		"onlate": {Mode: pimtree.ModeShared, WindowR: 256, WindowS: 256, OnLate: func(pimtree.TimedArrival, uint64) {}},
	} {
		if _, err := pimtree.Open(cfg); err == nil {
			t.Fatalf("count-mode %s knob accepted", name)
		}
	}
	// DiscardMatches and OnMatch are mutually exclusive output sides.
	if _, err := pimtree.Open(pimtree.Config{
		Mode: pimtree.ModeSerial, WindowR: 8, WindowS: 8,
		DiscardMatches: true, OnMatch: func(pimtree.Match) {},
	}); err == nil {
		t.Fatal("DiscardMatches with OnMatch accepted")
	}
}

func TestEngineLifecycleErrors(t *testing.T) {
	e, err := pimtree.Open(pimtree.Config{Mode: pimtree.ModeSharded, WindowR: 16, WindowS: 16, Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := e.PushTimed(pimtree.R, 1, 1); err == nil {
		t.Fatal("PushTimed accepted on a count-window engine")
	}
	if _, err := e.Close(context.Background()); err != nil {
		t.Fatal(err)
	}
	if err := e.Push(pimtree.R, 1); !errors.Is(err, pimtree.ErrClosed) {
		t.Fatalf("Push after Close = %v, want ErrClosed", err)
	}
	if err := e.PushBatch(nil); !errors.Is(err, pimtree.ErrClosed) {
		t.Fatalf("PushBatch after Close = %v, want ErrClosed", err)
	}
	if err := e.Drain(context.Background()); !errors.Is(err, pimtree.ErrClosed) {
		t.Fatalf("Drain after Close = %v, want ErrClosed", err)
	}
	if _, err := e.Close(context.Background()); !errors.Is(err, pimtree.ErrClosed) {
		t.Fatalf("second Close = %v, want ErrClosed", err)
	}

	// Timed engine: a strict-mode timestamp regression is rejected with
	// ErrUnordered and does not poison the session.
	te, err := pimtree.Open(pimtree.Config{Mode: pimtree.ModeShardedTime, Span: 100, MaxLive: 64, Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := te.PushTimed(pimtree.R, 1, 50); err != nil {
		t.Fatal(err)
	}
	if err := te.PushTimed(pimtree.S, 2, 49); !errors.Is(err, pimtree.ErrUnordered) {
		t.Fatalf("regressed PushTimed = %v, want ErrUnordered", err)
	}
	if err := te.Push(pimtree.R, 1); err == nil || strings.Contains(err.Error(), "closed") {
		t.Fatalf("count Push on timed engine = %v, want a mode error", err)
	}
	if err := te.PushTimed(pimtree.S, 2, 51); err != nil {
		t.Fatalf("push after rejected regression: %v", err)
	}
	if _, err := te.Close(context.Background()); err != nil {
		t.Fatal(err)
	}
}

// TestEngineAbortedDrain drives the cancellable-session path
// deterministically: a blocking OnMatch stalls the propagation stage, so a
// Drain under an already-canceled context must abandon, the engine must
// refuse further pushes with ErrAborted, and Close must still complete once
// the sink unblocks.
func TestEngineAbortedDrain(t *testing.T) {
	release := make(chan struct{})
	reached := make(chan struct{})
	var once sync.Once
	e, err := pimtree.Open(pimtree.Config{
		Mode: pimtree.ModeSharded, WindowR: 64, WindowS: 64, Diff: pimtree.KeySpace,
		Shards: 2, BatchSize: 1,
		OnMatch: func(pimtree.Match) {
			once.Do(func() { close(reached) })
			<-release
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	// Two tuples that must match: the second's probe produces a match whose
	// propagation blocks in OnMatch.
	if err := e.Push(pimtree.R, 10); err != nil {
		t.Fatal(err)
	}
	if err := e.Push(pimtree.S, 10); err != nil {
		t.Fatal(err)
	}
	select {
	case <-reached:
	case <-time.After(10 * time.Second):
		t.Fatal("sink never reached")
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := e.Drain(ctx); !errors.Is(err, context.Canceled) {
		t.Fatalf("Drain under canceled ctx = %v, want context.Canceled", err)
	}
	if err := e.Push(pimtree.R, 11); !errors.Is(err, pimtree.ErrAborted) {
		t.Fatalf("Push after abandoned Drain = %v, want ErrAborted", err)
	}
	close(release)
	st, err := e.Close(context.Background())
	if err != nil {
		t.Fatalf("Close after abandoned Drain: %v", err)
	}
	if st.Matches == 0 {
		t.Fatal("no matches after unblocking the sink")
	}
}
