package pimtree

import (
	"sync"
	"time"

	"pimtree/internal/tune"
)

// tuner is the AutoTune driver: a goroutine that periodically folds the
// engine's live statistics into a tune.Sample, feeds the feedback
// controller, and applies the decisions it emits through Reconfigure. The
// controller owns the judgement (hysteresis, cooldown, bounded steps); the
// tuner only owns the plumbing.
type tuner struct {
	e    *Engine
	ctrl *tune.Controller
	ivl  time.Duration
	done chan struct{}
	wg   sync.WaitGroup

	mu   sync.Mutex
	last string // most recent applied decision, for Tuning/LastDecision
}

func startTuner(e *Engine, pol TunePolicy) *tuner {
	ivl := pol.Interval
	if ivl <= 0 {
		ivl = 250 * time.Millisecond
	}
	t := &tuner{
		e: e,
		ctrl: tune.NewController(tune.Policy{
			Streak:        pol.Streak,
			Cooldown:      pol.Cooldown,
			QueueHigh:     pol.QueueHigh,
			ImbalanceHigh: pol.ImbalanceHigh,
			MinShards:     pol.MinShards,
			MaxShards:     pol.MaxShards,
		}),
		ivl:  ivl,
		done: make(chan struct{}),
	}
	t.wg.Add(1)
	go t.loop()
	return t
}

func (t *tuner) loop() {
	defer t.wg.Done()
	tick := time.NewTicker(t.ivl)
	defer tick.Stop()
	for {
		select {
		case <-t.done:
			return
		case <-tick.C:
			t.observe()
		}
	}
}

// observe takes one sample and applies the controller's decision, if any.
// Every read here is a lock-free snapshot accessor, so sampling never
// stalls the producer; only an applied decision contends (Reconfigure
// serializes on the producer mutex).
func (t *tuner) observe() {
	e := t.e
	if e.state.Load() != stateOpen {
		return
	}
	snap := e.router.LoadSnapshot()
	s := tune.Sample{
		Shards:     len(snap),
		Imbalance:  shardImbalance(snap),
		Rebalances: e.router.Rebalances(),
		Tuples:     e.router.Tuples(),
	}
	for _, l := range snap {
		if l.QueueDepth > s.QueueDepth {
			s.QueueDepth = l.QueueDepth
		}
		if l.QueueHW > s.QueueHW {
			s.QueueHW = l.QueueHW
		}
	}
	e.tunMu.Lock()
	s.Adaptive = e.cfg.Adaptive
	e.tunMu.Unlock()

	d, ok := t.ctrl.Observe(s)
	if !ok {
		return
	}
	var delta Delta
	switch d.Action {
	case tune.ActionGrowShards, tune.ActionShrinkShards:
		delta.Shards = d.Shards
	case tune.ActionEnableRebalance:
		delta.Rebalance = &RebalancePolicy{}
	default:
		return
	}
	if err := e.Reconfigure(delta); err != nil {
		// The engine aborted or closed under us; the next sample (or stop)
		// notices. A validation failure cannot happen — the controller only
		// emits deltas the merged config accepts.
		return
	}
	e.decisions.Add(1)
	t.mu.Lock()
	t.last = d.Action.String() + ": " + d.Reason
	t.mu.Unlock()
}

func (t *tuner) lastDecision() string {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.last
}

func (t *tuner) stop() {
	close(t.done)
	t.wg.Wait()
}
