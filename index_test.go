package pimtree

import (
	"math"
	"strings"
	"testing"
)

// NewIndex's MergeRatio contract: zero selects the default, anything else
// must lie in (0, 1], and the error spells the zero-means-default rule out.
func TestNewIndexMergeRatioValidation(t *testing.T) {
	cases := []struct {
		name  string
		ratio float64
		ok    bool
	}{
		{"zero selects default", 0, true},
		{"smallest positive", math.SmallestNonzeroFloat64, true},
		{"paper serial default", 1.0 / 16, true},
		{"half", 0.5, true},
		{"upper bound inclusive", 1, true},
		{"negative", -0.001, false},
		{"negative one", -1, false},
		{"just above one", math.Nextafter(1, 2), false},
		{"two", 2, false},
		{"NaN", math.NaN(), false},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			ix, err := NewIndex(64, IndexOptions{MergeRatio: c.ratio})
			if c.ok {
				if err != nil {
					t.Fatalf("ratio %v rejected: %v", c.ratio, err)
				}
				// The index must actually work with the accepted ratio.
				ix.Insert(1, 0)
				found := false
				ix.Search(0, 2, func(key, ref uint32) bool { found = true; return true })
				if !found {
					t.Fatal("accepted index lost an insert")
				}
				return
			}
			if err == nil {
				t.Fatalf("ratio %v accepted", c.ratio)
			}
			if !strings.Contains(err.Error(), "zero selects the default") {
				t.Fatalf("error does not state the zero-means-default rule: %v", err)
			}
		})
	}
}

func TestNewIndexOtherValidation(t *testing.T) {
	if _, err := NewIndex(0, IndexOptions{}); err == nil {
		t.Fatal("zero window accepted")
	}
	if _, err := NewIndex(16, IndexOptions{InsertionDepth: -1}); err == nil {
		t.Fatal("negative insertion depth accepted")
	}
}
