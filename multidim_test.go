package pimtree

import (
	"math/rand"
	"testing"
)

func TestEncodeDecodeXY(t *testing.T) {
	for i := 0; i < 1000; i++ {
		x, y := uint16(i*7), uint16(i*13)
		gx, gy := DecodeXY(EncodeXY(x, y))
		if gx != x || gy != y {
			t.Fatalf("round trip (%d,%d) -> (%d,%d)", x, y, gx, gy)
		}
	}
}

func TestSearchBoxMatchesBruteForce(t *testing.T) {
	ix, err := NewIndex(1<<14, IndexOptions{MergeRatio: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(21))
	type pt struct{ x, y uint16 }
	pts := make([]pt, 4000)
	for i := range pts {
		p := pt{uint16(rng.Intn(1 << 16)), uint16(rng.Intn(1 << 16))}
		pts[i] = p
		ix.Insert(EncodeXY(p.x, p.y), uint32(i))
		if ix.NeedsMaintenance() {
			ix.Maintain(func(uint32) bool { return true })
		}
	}
	for trial := 0; trial < 40; trial++ {
		x1 := uint16(rng.Intn(1 << 16))
		y1 := uint16(rng.Intn(1 << 16))
		x2 := x1 + uint16(rng.Intn(1<<13))
		y2 := y1 + uint16(rng.Intn(1<<13))
		if x2 < x1 {
			x2 = ^uint16(0)
		}
		if y2 < y1 {
			y2 = ^uint16(0)
		}
		want := map[uint32]bool{}
		for i, p := range pts {
			if p.x >= x1 && p.x <= x2 && p.y >= y1 && p.y <= y2 {
				want[uint32(i)] = true
			}
		}
		got := map[uint32]bool{}
		ix.SearchBox(x1, y1, x2, y2, func(x, y uint16, ref uint32) bool {
			if x < x1 || x > x2 || y < y1 || y > y2 {
				t.Fatalf("false positive (%d,%d) for box (%d,%d)-(%d,%d)", x, y, x1, y1, x2, y2)
			}
			got[ref] = true
			return true
		})
		if len(got) != len(want) {
			t.Fatalf("box (%d,%d)-(%d,%d): got %d points, want %d", x1, y1, x2, y2, len(got), len(want))
		}
		for ref := range want {
			if !got[ref] {
				t.Fatalf("missing point ref %d", ref)
			}
		}
	}
}

func TestSearchBoxEarlyStop(t *testing.T) {
	ix, _ := NewIndex(1024, IndexOptions{})
	for i := 0; i < 100; i++ {
		ix.Insert(EncodeXY(uint16(i), uint16(i)), uint32(i))
	}
	n := 0
	ix.SearchBox(0, 0, ^uint16(0), ^uint16(0), func(x, y uint16, ref uint32) bool {
		n++
		return n < 5
	})
	if n != 5 {
		t.Fatalf("early stop visited %d, want 5", n)
	}
}

func TestSearchBoxNormalizesCorners(t *testing.T) {
	ix, _ := NewIndex(128, IndexOptions{})
	ix.Insert(EncodeXY(50, 50), 1)
	n := 0
	// Swapped corners must still find the point.
	ix.SearchBox(60, 60, 40, 40, func(x, y uint16, ref uint32) bool {
		n++
		return true
	})
	if n != 1 {
		t.Fatalf("normalized box found %d, want 1", n)
	}
}
