// Command pimtrace generates tuple traces in the CSV format the pimtree
// library replays (`stream,key` per line), so experiments can be pinned to a
// byte-identical workload across runs and machines.
//
// Examples:
//
//	pimtrace -n 1000000 > uniform.csv
//	pimtrace -n 500000 -dist gaussian -ps 0.2 > skewed_asym.csv
//	pimtrace -n 200000 -self -dist gamma33 > selfjoin.csv
//	pimtrace -n 300000 -dist stepskew > hotband.csv
//	pimjoin -trace uniform.csv -w 65536
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"os"

	"pimtree"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("pimtrace", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		n    = fs.Int("n", 1_000_000, "tuples to generate")
		dist = fs.String("dist", "uniform", "key distribution: uniform | gaussian | gamma33 | gamma15 | drift | stepskew | hotspot")
		r    = fs.Float64("r", 0.5, "drift rate for -dist drift")
		ps   = fs.Float64("ps", 0.5, "share of stream S (two-way traces)")
		self = fs.Bool("self", false, "single-stream trace for self-joins")
		seed = fs.Int64("seed", 42, "generator seed")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}

	mk := sourceFor(*dist, *n, *r)
	if mk == nil {
		fmt.Fprintf(stderr, "pimtrace: unknown distribution %q\n", *dist)
		return 2
	}

	var arrivals []pimtree.Arrival
	if *self {
		arrivals = pimtree.SelfArrivals(mk(*seed+1), *n)
	} else {
		arrivals = pimtree.Interleave(*seed, mk(*seed+1), mk(*seed+2), *ps, *n)
	}

	w := bufio.NewWriter(stdout)
	defer w.Flush()
	fmt.Fprintf(w, "# pimtrace n=%d dist=%s ps=%.2f self=%v seed=%d\n", *n, *dist, *ps, *self, *seed)
	if err := pimtree.WriteArrivalsCSV(w, arrivals); err != nil {
		fmt.Fprintln(stderr, "pimtrace:", err)
		return 1
	}
	return 0
}

// sourceFor maps a distribution name to a seeded key-source factory, or nil
// for an unknown name. n and r parameterize the non-stationary
// distributions (phase lengths and drift rate).
func sourceFor(dist string, n int, r float64) func(seed int64) pimtree.KeySource {
	switch dist {
	case "uniform":
		return func(s int64) pimtree.KeySource { return pimtree.UniformSource(s) }
	case "gaussian":
		return func(s int64) pimtree.KeySource { return pimtree.GaussianSource(s, 0.5, 0.125) }
	case "gamma33":
		return func(s int64) pimtree.KeySource { return pimtree.GammaSource(s, 3, 3) }
	case "gamma15":
		return func(s int64) pimtree.KeySource { return pimtree.GammaSource(s, 1, 5) }
	case "drift":
		return func(s int64) pimtree.KeySource { return pimtree.DriftingGaussianSource(s, r, n/4, n/2) }
	case "stepskew":
		return func(s int64) pimtree.KeySource { return pimtree.StepSkewSource(s, 1.0/16, n/6) }
	case "hotspot":
		return func(s int64) pimtree.KeySource { return pimtree.DriftingHotspotSource(s, 1.0/16, n) }
	default:
		return nil
	}
}
