// Command pimtrace generates tuple traces in the CSV format the pimtree
// library replays (`stream,key` per line), so experiments can be pinned to a
// byte-identical workload across runs and machines.
//
// Examples:
//
//	pimtrace -n 1000000 > uniform.csv
//	pimtrace -n 500000 -dist gaussian -ps 0.2 > skewed_asym.csv
//	pimtrace -n 200000 -self -dist gamma33 > selfjoin.csv
//	pimjoin -trace uniform.csv -w 65536
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"

	"pimtree"
)

func main() {
	var (
		n    = flag.Int("n", 1_000_000, "tuples to generate")
		dist = flag.String("dist", "uniform", "key distribution: uniform | gaussian | gamma33 | gamma15 | drift")
		r    = flag.Float64("r", 0.5, "drift rate for -dist drift")
		ps   = flag.Float64("ps", 0.5, "share of stream S (two-way traces)")
		self = flag.Bool("self", false, "single-stream trace for self-joins")
		seed = flag.Int64("seed", 42, "generator seed")
	)
	flag.Parse()

	mk := func(s int64) pimtree.KeySource {
		switch *dist {
		case "uniform":
			return pimtree.UniformSource(s)
		case "gaussian":
			return pimtree.GaussianSource(s, 0.5, 0.125)
		case "gamma33":
			return pimtree.GammaSource(s, 3, 3)
		case "gamma15":
			return pimtree.GammaSource(s, 1, 5)
		case "drift":
			return pimtree.DriftingGaussianSource(s, *r, *n/4, *n/2)
		default:
			fmt.Fprintf(os.Stderr, "pimtrace: unknown distribution %q\n", *dist)
			os.Exit(2)
			return nil
		}
	}

	var arrivals []pimtree.Arrival
	if *self {
		arrivals = pimtree.SelfArrivals(mk(*seed+1), *n)
	} else {
		arrivals = pimtree.Interleave(*seed, mk(*seed+1), mk(*seed+2), *ps, *n)
	}

	w := bufio.NewWriter(os.Stdout)
	defer w.Flush()
	fmt.Fprintf(w, "# pimtrace n=%d dist=%s ps=%.2f self=%v seed=%d\n", *n, *dist, *ps, *self, *seed)
	if err := pimtree.WriteArrivalsCSV(w, arrivals); err != nil {
		fmt.Fprintln(os.Stderr, "pimtrace:", err)
		os.Exit(1)
	}
}
