package main

import (
	"strings"
	"testing"
)

func TestSourceFor(t *testing.T) {
	for _, dist := range []string{"uniform", "gaussian", "gamma33", "gamma15", "drift", "stepskew", "hotspot"} {
		mk := sourceFor(dist, 1000, 0.5)
		if mk == nil {
			t.Fatalf("sourceFor(%q) = nil", dist)
		}
		// Deterministic for a fixed seed.
		if mk(3).Next() != mk(3).Next() {
			t.Fatalf("%s source not deterministic", dist)
		}
	}
	if sourceFor("nope", 1000, 0.5) != nil {
		t.Fatal("unknown distribution accepted")
	}
}

func TestRunGeneratesTrace(t *testing.T) {
	var out, errOut strings.Builder
	if code := run([]string{"-n", "100", "-dist", "stepskew", "-seed", "9"}, &out, &errOut); code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errOut.String())
	}
	lines := strings.Split(strings.TrimSpace(out.String()), "\n")
	if !strings.HasPrefix(lines[0], "# pimtrace n=100 dist=stepskew") {
		t.Fatalf("header = %q", lines[0])
	}
	if len(lines) != 101 {
		t.Fatalf("trace has %d data lines, want 100", len(lines)-1)
	}
	sawS := false
	for _, l := range lines[1:] {
		if !strings.HasPrefix(l, "R,") && !strings.HasPrefix(l, "S,") {
			t.Fatalf("bad trace line %q", l)
		}
		if strings.HasPrefix(l, "S,") {
			sawS = true
		}
	}
	if !sawS {
		t.Fatal("two-way trace produced no stream-S tuples")
	}

	// Same flags, same bytes: traces must be reproducible.
	var again strings.Builder
	run([]string{"-n", "100", "-dist", "stepskew", "-seed", "9"}, &again, &errOut)
	if again.String() != out.String() {
		t.Fatal("trace not deterministic across runs")
	}
}

func TestRunSelfTrace(t *testing.T) {
	var out, errOut strings.Builder
	if code := run([]string{"-n", "50", "-self"}, &out, &errOut); code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errOut.String())
	}
	for _, l := range strings.Split(strings.TrimSpace(out.String()), "\n")[1:] {
		if !strings.HasPrefix(l, "R,") {
			t.Fatalf("self trace emitted non-R line %q", l)
		}
	}
}

func TestRunBadInputs(t *testing.T) {
	for _, args := range [][]string{
		{"-dist", "warp"},
		{"-badflag"},
	} {
		var out, errOut strings.Builder
		if code := run(args, &out, &errOut); code != 2 {
			t.Fatalf("args %v: exit %d, want 2", args, code)
		}
		if errOut.Len() == 0 {
			t.Fatalf("args %v: no diagnostic on stderr", args)
		}
	}
}
