// Command benchgate compares two pimbench JSON reports (see pimbench -json)
// and fails when throughput regressed beyond a threshold — the comparator
// behind CI's bench-smoke job and the committed BENCH_*.json baselines.
//
//	benchgate -baseline BENCH_PR2.json -current bench_current.json
//
// For every gated experiment (by default the abl-* ablations, whose numeric
// columns are all Mtps), benchgate computes the geometric mean of the
// throughput cells present in both reports and fails if the current geomean
// falls more than -max-regress below the baseline's. Reports carry a
// host-speed calibration (a fixed serial microbenchmark measured at report
// time); comparisons are scaled by the calibration ratio, so a baseline
// recorded on a slower or faster machine than the CI runner stays usable.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"sort"
	"strconv"
	"strings"

	"pimtree/internal/bench"
)

// nonThroughputColumns are numeric columns of gated experiments that do not
// measure Mtps and must not enter the comparison: counters, and
// lower-is-better latency columns (which would invert the regression
// direction — a latency improvement would read as a throughput drop).
var nonThroughputColumns = map[string]bool{
	"rebalances": true,
	"migrated":   true,
	"merges":     true,
	"mean µs":    true,
	"p99 µs":     true,
}

// nonThroughputSubstrings catches latency/time columns by fragment, so new
// experiments whose units are microseconds or milliseconds stay out of the
// throughput geomean without registering each column name here.
var nonThroughputSubstrings = []string{"µs", "ms", "latency", "nanos"}

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("benchgate", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		basePath  = fs.String("baseline", "", "baseline report (e.g. BENCH_PR2.json)")
		curPath   = fs.String("current", "", "report of the run under test")
		maxReg    = fs.Float64("max-regress", 0.25, "maximum tolerated throughput regression (fraction)")
		calibrate = fs.Bool("calibrate", true, "scale by the reports' host calibration ratio")
		prefix    = fs.String("prefix", "abl-", "gate experiments whose id has this prefix")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *basePath == "" || *curPath == "" {
		fmt.Fprintln(stderr, "benchgate: -baseline and -current are required")
		return 2
	}
	base, err := load(*basePath)
	if err != nil {
		fmt.Fprintln(stderr, "benchgate:", err)
		return 2
	}
	cur, err := load(*curPath)
	if err != nil {
		fmt.Fprintln(stderr, "benchgate:", err)
		return 2
	}

	scale := 1.0
	if *calibrate && base.CalibMtps > 0 && cur.CalibMtps > 0 {
		scale = cur.CalibMtps / base.CalibMtps
	}
	fmt.Fprintf(stdout, "benchgate: calibration baseline=%.3f current=%.3f scale=%.3f threshold=%.0f%%\n",
		base.CalibMtps, cur.CalibMtps, scale, *maxReg*100)
	if base.GOMAXPROCS != cur.GOMAXPROCS {
		// The serial calibration corrects for single-thread speed, not core
		// count, so parallel-scaling regressions are under-protected until
		// the baseline is regenerated on a host shaped like the runner.
		fmt.Fprintf(stdout, "benchgate: WARNING: GOMAXPROCS differs (baseline=%d, current=%d); "+
			"parallel cells compare loosely — refresh the baseline from this host's report\n",
			base.GOMAXPROCS, cur.GOMAXPROCS)
	}

	curByID := make(map[string]bench.ExperimentResult, len(cur.Experiments))
	for _, e := range cur.Experiments {
		curByID[e.ID] = e
	}

	failures := 0
	gated := 0
	for _, b := range base.Experiments {
		if !strings.HasPrefix(b.ID, *prefix) {
			continue
		}
		gated++
		c, ok := curByID[b.ID]
		if !ok {
			fmt.Fprintf(stdout, "FAIL %-16s missing from current report\n", b.ID)
			failures++
			continue
		}
		gBase, gCur, cells, dropped := compare(b.Table, c.Table)
		if cells == 0 {
			fmt.Fprintf(stdout, "FAIL %-16s no comparable throughput cells (refresh the baseline?)\n", b.ID)
			failures++
			continue
		}
		// A cell present in the baseline but missing (or non-positive) in
		// the current report would silently shrink the geomean — and a
		// regression could hide in exactly the cells that vanished. Shrunken
		// coverage is itself a failure.
		if len(dropped) > 0 {
			fmt.Fprintf(stdout, "FAIL %-16s %d of %d baseline cell(s) missing or non-positive in current report: %s\n",
				b.ID, len(dropped), cells+len(dropped), strings.Join(dropped, ", "))
			failures++
		}
		ratio := gCur / (gBase * scale)
		status := "ok  "
		if ratio < 1-*maxReg {
			status = "FAIL"
			failures++
		}
		fmt.Fprintf(stdout, "%s %-16s geomean %.4f -> %.4f Mtps over %d cells (%.0f%% of calibrated baseline)\n",
			status, b.ID, gBase, gCur, cells, ratio*100)
	}
	if gated == 0 {
		fmt.Fprintf(stdout, "FAIL no experiments with prefix %q in baseline\n", *prefix)
		failures++
	}
	if failures > 0 {
		fmt.Fprintf(stdout, "benchgate: %d failure(s)\n", failures)
		return 1
	}
	fmt.Fprintln(stdout, "benchgate: pass")
	return 0
}

// compare returns the geometric means of the throughput cells shared by the
// two tables (matched by row label and column name), the shared-cell count,
// and the sorted keys of baseline cells with no usable counterpart in the
// current table — the caller fails the gate when coverage shrank.
func compare(base, cur bench.Table) (gBase, gCur float64, cells int, dropped []string) {
	bc := cellMap(base)
	cc := cellMap(cur)
	var sumB, sumC float64
	for key, vb := range bc {
		vc, ok := cc[key]
		if !ok {
			dropped = append(dropped, key)
			continue
		}
		sumB += math.Log(vb)
		sumC += math.Log(vc)
		cells++
	}
	sort.Strings(dropped)
	if cells == 0 {
		return 0, 0, 0, dropped
	}
	return math.Exp(sumB / float64(cells)), math.Exp(sumC / float64(cells)), cells, dropped
}

// cellMap extracts the positive numeric throughput cells of a table, keyed
// by "<row label>|<column name>". The first column is the row label;
// known non-throughput columns are skipped.
func cellMap(t bench.Table) map[string]float64 {
	out := make(map[string]float64)
	for _, row := range t.Rows {
		if len(row) == 0 {
			continue
		}
		for j := 1; j < len(row) && j < len(t.Columns); j++ {
			if !isThroughputColumn(t.Columns[j]) {
				continue
			}
			v, err := strconv.ParseFloat(row[j], 64)
			if err != nil || v <= 0 {
				continue
			}
			out[row[0]+"|"+t.Columns[j]] = v
		}
	}
	return out
}

// isThroughputColumn reports whether a column measures Mtps (higher is
// better) and may enter the gate's geomean.
func isThroughputColumn(name string) bool {
	lower := strings.ToLower(name)
	if nonThroughputColumns[lower] {
		return false
	}
	for _, frag := range nonThroughputSubstrings {
		if strings.Contains(lower, frag) {
			return false
		}
	}
	return true
}

func load(path string) (*bench.Report, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var r bench.Report
	if err := json.Unmarshal(data, &r); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &r, nil
}
