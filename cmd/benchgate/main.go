// Command benchgate compares two pimbench JSON reports (see pimbench -json,
// pimload -json) and fails on regressions — the comparator behind CI's
// bench-smoke and pimload-smoke jobs and the committed BENCH_*.json
// baselines.
//
//	benchgate -baseline BENCH_PR2.json -current bench_current.json
//	benchgate -baseline LOAD_BASE.json -current load.json -prefix load- -max-lat-regress 0.5
//
// Gating is direction-aware per cell. Every numeric cell of a gated
// experiment is classified by its column name:
//
//   - counters (rebalances, migrated, sent, matches, ...) are never gated;
//   - latency columns (µs, ms, latency, nanos fragments) are lower-is-better
//     and fail on *increase* beyond -max-lat-regress;
//   - allocation columns (alloc, B/op, B/tuple fragments) are lower-is-better
//     and fail on *increase* beyond -max-alloc-regress — compared cell by
//     cell in absolute terms rather than by geomean, because the healthy
//     baseline value is exactly zero, which a log-mean cannot represent;
//   - imbalance columns (abl-tune's resident load-skew ratios) are
//     lower-is-better and fail on *increase* beyond -max-imb-regress,
//     compared per cell like allocations — their healthy value hovers near
//     1.0, where a geomean would hide a single shard going hot;
//   - everything else (Mtps throughput, offered/s, cap/s rates) is
//     higher-is-better and fails on *decrease* beyond -max-regress.
//
// Latency gating is opt-in (-max-lat-regress 0 disables it, the default):
// the latency columns of the closed-loop quick-scale ablations are
// scheduling-noise dominated and would flake; open-loop pimload reports are
// the intended gated consumer. Ungated latency cells are still reported.
//
// Each direction's cells are reduced to a geometric mean per experiment.
// Reports carry a host-speed calibration (a fixed serial microbenchmark
// measured at report time); comparisons are scaled by the calibration ratio
// — inversely for latency, where a faster host is expected to be
// proportionally lower — so a baseline recorded on a slower or faster
// machine than the CI runner stays usable.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"sort"
	"strconv"
	"strings"

	"pimtree/internal/bench"
)

// counterColumns are numeric columns that measure neither throughput nor
// latency — event counts whose drift is not a regression in either
// direction. They never enter a geomean.
var counterColumns = map[string]bool{
	"rebalances": true,
	"migrated":   true,
	"merges":     true,
	"sent":       true,
	"matches":    true,
	"trials":     true,
	"errors":     true,
	"gc cycles":  true,
	"decisions":  true,
}

// latencySubstrings classify lower-is-better time columns by fragment, so
// new experiments whose units are microseconds or milliseconds gate in the
// right direction without registering each column name here.
var latencySubstrings = []string{"µs", "ms", "latency", "nanos"}

// allocSubstrings classify GC-pressure columns (allocs/tuple, B/tuple and
// the benchmem-style allocs/op, B/op). They are checked before the latency
// fragments so "allocs/op" does not fall through to the rate bucket.
var allocSubstrings = []string{"alloc", "b/op", "b/tuple"}

// imbalanceSubstrings classify load-skew ratio columns (abl-tune's final
// resident imbalance). Like allocations they are lower-is-better and gate
// per cell in absolute terms — the geomean of a ratio whose healthy value
// hovers near 1.0 would hide a single shard going hot.
var imbalanceSubstrings = []string{"imbalance"}

// Cell directions.
const (
	dirSkip   = 0  // counters: never gated
	dirHigher = 1  // throughput/rates: fail on decrease
	dirLower  = -1 // latency: fail on increase
	dirAlloc  = 2  // allocations: fail on increase, compared per cell
	dirImb    = 3  // imbalance ratios: fail on increase, compared per cell
)

// allocSlack is the absolute headroom added to every alloc-cell bound. The
// healthy baseline is exactly 0.00, where a fractional threshold alone would
// make any measurement noise (background goroutines share the process-wide
// GC counters) a failure; half an object or half a byte per tuple still
// catches the one-allocation-per-tuple regressions the gate exists for.
const allocSlack = 0.5

// imbalanceSlack is the absolute headroom added to every imbalance-cell
// bound: rebalance timing jitters the final resident split by a fraction of
// one epoch, which near the healthy value of 1.0 would otherwise make a
// fractional threshold alone flaky. A static-sharding cell regressing from
// "balanced" to "one shard owns the hot band" moves by whole multiples and
// still fails.
const imbalanceSlack = 0.5

// direction classifies a column name.
func direction(name string) int {
	lower := strings.ToLower(name)
	if counterColumns[lower] {
		return dirSkip
	}
	for _, frag := range allocSubstrings {
		if strings.Contains(lower, frag) {
			return dirAlloc
		}
	}
	for _, frag := range imbalanceSubstrings {
		if strings.Contains(lower, frag) {
			return dirImb
		}
	}
	for _, frag := range latencySubstrings {
		if strings.Contains(lower, frag) {
			return dirLower
		}
	}
	return dirHigher
}

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("benchgate", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		basePath  = fs.String("baseline", "", "baseline report (e.g. BENCH_PR2.json)")
		curPath   = fs.String("current", "", "report of the run under test")
		maxReg    = fs.Float64("max-regress", 0.25, "maximum tolerated throughput decrease (fraction)")
		maxLatReg = fs.Float64("max-lat-regress", 0, "maximum tolerated latency increase (fraction); 0 reports latency without gating it")
		maxAllReg = fs.Float64("max-alloc-regress", 0.25, "maximum tolerated allocation increase (fraction, plus a fixed absolute slack)")
		maxImbReg = fs.Float64("max-imb-regress", 0.25, "maximum tolerated shard-imbalance increase (fraction, plus a fixed absolute slack)")
		calibrate = fs.Bool("calibrate", true, "scale by the reports' host calibration ratio")
		prefix    = fs.String("prefix", "abl-", "gate experiments whose id has this prefix")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *basePath == "" || *curPath == "" {
		fmt.Fprintln(stderr, "benchgate: -baseline and -current are required")
		return 2
	}
	base, err := load(*basePath)
	if err != nil {
		fmt.Fprintln(stderr, "benchgate:", err)
		return 2
	}
	cur, err := load(*curPath)
	if err != nil {
		fmt.Fprintln(stderr, "benchgate:", err)
		return 2
	}

	scale := 1.0
	if *calibrate && base.CalibMtps > 0 && cur.CalibMtps > 0 {
		scale = cur.CalibMtps / base.CalibMtps
	}
	fmt.Fprintf(stdout, "benchgate: calibration baseline=%.3f current=%.3f scale=%.3f threshold=%.0f%% lat-threshold=%.0f%% alloc-threshold=%.0f%%\n",
		base.CalibMtps, cur.CalibMtps, scale, *maxReg*100, *maxLatReg*100, *maxAllReg*100)
	if base.GOMAXPROCS != cur.GOMAXPROCS {
		// The serial calibration corrects for single-thread speed, not core
		// count, so parallel-scaling regressions are under-protected until
		// the baseline is regenerated on a host shaped like the runner.
		fmt.Fprintf(stdout, "benchgate: WARNING: GOMAXPROCS differs (baseline=%d, current=%d); "+
			"parallel cells compare loosely — refresh the baseline from this host's report\n",
			base.GOMAXPROCS, cur.GOMAXPROCS)
	}

	curByID := make(map[string]bench.ExperimentResult, len(cur.Experiments))
	for _, e := range cur.Experiments {
		curByID[e.ID] = e
	}

	classes := []struct {
		name   string
		dir    int
		thresh float64
		gated  bool
	}{
		{"throughput", dirHigher, *maxReg, true},
		{"latency", dirLower, *maxLatReg, *maxLatReg > 0},
	}

	failures := 0
	gated := 0
	for _, b := range base.Experiments {
		if !strings.HasPrefix(b.ID, *prefix) {
			continue
		}
		gated++
		c, ok := curByID[b.ID]
		if !ok {
			fmt.Fprintf(stdout, "FAIL %-16s missing from current report\n", b.ID)
			failures++
			continue
		}
		present := 0
		for _, cl := range classes {
			gBase, gCur, cells, dropped := compare(b.Table, c.Table, cl.dir)
			if cells == 0 && len(dropped) == 0 {
				continue // this experiment has no cells in this direction
			}
			present += cells
			if !cl.gated {
				if cells > 0 {
					fmt.Fprintf(stdout, "info %-16s %s geomean %.4f -> %.4f over %d cells (not gated)\n",
						b.ID, cl.name, gBase, gCur, cells)
				}
				continue
			}
			if cells == 0 {
				fmt.Fprintf(stdout, "FAIL %-16s no comparable %s cells (refresh the baseline?)\n", b.ID, cl.name)
				failures++
				continue
			}
			// A cell present in the baseline but missing (or non-positive) in
			// the current report would silently shrink the geomean — and a
			// regression could hide in exactly the cells that vanished.
			// Shrunken coverage is itself a failure.
			if len(dropped) > 0 {
				fmt.Fprintf(stdout, "FAIL %-16s %d of %d baseline %s cell(s) missing or non-positive in current report: %s\n",
					b.ID, len(dropped), cells+len(dropped), cl.name, strings.Join(dropped, ", "))
				failures++
			}
			var ratio float64
			var verdict bool
			if cl.dir == dirHigher {
				ratio = gCur / (gBase * scale)
				verdict = ratio >= 1-cl.thresh
			} else {
				// A faster host (scale > 1) should be proportionally lower.
				ratio = gCur * scale / gBase
				verdict = ratio <= 1+cl.thresh
			}
			status := "ok  "
			if !verdict {
				status = "FAIL"
				failures++
			}
			note := ""
			if cl.dir == dirLower {
				note = ", lower is better"
			}
			fmt.Fprintf(stdout, "%s %-16s %s geomean %.4f -> %.4f over %d cells (%.0f%% of calibrated baseline%s)\n",
				status, b.ID, cl.name, gBase, gCur, cells, ratio*100, note)
		}
		// Alloc and imbalance cells gate per cell, absolutely and
		// uncalibrated: allocation counts and load-skew ratios are
		// properties of the code, not of host speed, and their healthy
		// baselines (0.00 and ~1.0) sit where geomean arithmetic misleads.
		absClasses := []struct {
			name   string
			dir    int
			thresh float64
			slack  float64
		}{
			{"alloc", dirAlloc, *maxAllReg, allocSlack},
			{"imbalance", dirImb, *maxImbReg, imbalanceSlack},
		}
		for _, cl := range absClasses {
			aBad, aCells, aDropped := compareAbs(b.Table, c.Table, cl.dir, cl.thresh, cl.slack)
			present += aCells
			if len(aDropped) > 0 {
				fmt.Fprintf(stdout, "FAIL %-16s %d baseline %s cell(s) missing or unparseable in current report: %s\n",
					b.ID, len(aDropped), cl.name, strings.Join(aDropped, ", "))
				failures++
			}
			for _, bad := range aBad {
				fmt.Fprintf(stdout, "FAIL %-16s %s cell %s\n", b.ID, cl.name, bad)
				failures++
			}
			if aCells > 0 && len(aBad) == 0 {
				fmt.Fprintf(stdout, "ok   %-16s %s %d cell(s) within threshold (per-cell, uncalibrated)\n", b.ID, cl.name, aCells)
			}
		}
		if present == 0 {
			fmt.Fprintf(stdout, "FAIL %-16s no comparable cells (refresh the baseline?)\n", b.ID)
			failures++
		}
	}
	if gated == 0 {
		fmt.Fprintf(stdout, "FAIL no experiments with prefix %q in baseline\n", *prefix)
		failures++
	}
	if failures > 0 {
		fmt.Fprintf(stdout, "benchgate: %d failure(s)\n", failures)
		return 1
	}
	fmt.Fprintln(stdout, "benchgate: pass")
	return 0
}

// compare returns the geometric means of the dir-classified cells shared by
// the two tables (matched by row label and column name), the shared-cell
// count, and the sorted keys of baseline cells with no usable counterpart in
// the current table — the caller fails the gate when coverage shrank.
func compare(base, cur bench.Table, dir int) (gBase, gCur float64, cells int, dropped []string) {
	bc := cellMap(base, dir)
	cc := cellMap(cur, dir)
	var sumB, sumC float64
	for key, vb := range bc {
		vc, ok := cc[key]
		if !ok {
			dropped = append(dropped, key)
			continue
		}
		sumB += math.Log(vb)
		sumC += math.Log(vc)
		cells++
	}
	sort.Strings(dropped)
	if cells == 0 {
		return 0, 0, 0, dropped
	}
	return math.Exp(sumB / float64(cells)), math.Exp(sumC / float64(cells)), cells, dropped
}

// compareAbs gates dir-classified cells individually: a current cell fails
// when it exceeds base*(1+thresh) + slack. It returns descriptions of the
// failing cells, the shared-cell count, and the sorted keys of baseline
// cells with no parseable counterpart in the current table. Used for the
// alloc and imbalance directions, whose healthy values (0.0 and ~1.0) sit
// where geomean arithmetic misleads.
func compareAbs(base, cur bench.Table, dir int, thresh, slack float64) (bad []string, cells int, dropped []string) {
	bc := cellMap(base, dir)
	cc := cellMap(cur, dir)
	keys := make([]string, 0, len(bc))
	for key := range bc {
		keys = append(keys, key)
	}
	sort.Strings(keys)
	for _, key := range keys {
		vb := bc[key]
		vc, ok := cc[key]
		if !ok {
			dropped = append(dropped, key)
			continue
		}
		cells++
		if bound := vb*(1+thresh) + slack; vc > bound {
			bad = append(bad, fmt.Sprintf("%s %.4f -> %.4f (max %.4f)", key, vb, vc, bound))
		}
	}
	return bad, cells, dropped
}

// cellMap extracts a table's numeric cells whose column classifies as dir,
// keyed by "<row label>|<column name>". The first column is the row label.
// Geomean directions keep only positive values (log-mean domain); alloc
// cells keep zero, the value the alloc gate exists to defend.
func cellMap(t bench.Table, dir int) map[string]float64 {
	out := make(map[string]float64)
	for _, row := range t.Rows {
		if len(row) == 0 {
			continue
		}
		for j := 1; j < len(row) && j < len(t.Columns); j++ {
			if direction(t.Columns[j]) != dir {
				continue
			}
			v, err := strconv.ParseFloat(row[j], 64)
			if err != nil || v < 0 || (v == 0 && dir != dirAlloc && dir != dirImb) {
				continue
			}
			out[row[0]+"|"+t.Columns[j]] = v
		}
	}
	return out
}

func load(path string) (*bench.Report, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var r bench.Report
	if err := json.Unmarshal(data, &r); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &r, nil
}
