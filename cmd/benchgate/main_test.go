package main

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"pimtree/internal/bench"
)

func writeReport(t *testing.T, dir, name string, r bench.Report) string {
	t.Helper()
	data, err := json.Marshal(r)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func report(calib float64, mtps ...float64) bench.Report {
	rows := make([][]string, len(mtps))
	for i, m := range mtps {
		rows[i] = []string{
			[]string{"step-skew", "drift", "gaussian"}[i%3],
			fmt.Sprintf("%.4f", m),
			"3", // rebalances column: must be ignored by the gate
		}
	}
	return bench.Report{
		CalibMtps: calib,
		Experiments: []bench.ExperimentResult{{
			Table: bench.Table{
				ID:      "abl-adaptive",
				Columns: []string{"workload", "Mtps", "rebalances"},
				Rows:    rows,
			},
		}},
	}
}

func gate(t *testing.T, args ...string) (int, string) {
	t.Helper()
	var out, errOut strings.Builder
	code := run(args, &out, &errOut)
	return code, out.String() + errOut.String()
}

func TestGatePassesOnEqualReports(t *testing.T) {
	dir := t.TempDir()
	b := writeReport(t, dir, "base.json", report(1.0, 2.0, 2.0, 2.0))
	c := writeReport(t, dir, "cur.json", report(1.0, 2.0, 2.0, 2.0))
	code, out := gate(t, "-baseline", b, "-current", c)
	if code != 0 {
		t.Fatalf("exit %d:\n%s", code, out)
	}
	if !strings.Contains(out, "pass") {
		t.Fatalf("no pass verdict:\n%s", out)
	}
}

func TestGateFailsOnRegression(t *testing.T) {
	dir := t.TempDir()
	b := writeReport(t, dir, "base.json", report(1.0, 2.0, 2.0, 2.0))
	c := writeReport(t, dir, "cur.json", report(1.0, 1.0, 1.0, 1.0)) // -50%
	code, out := gate(t, "-baseline", b, "-current", c)
	if code != 1 || !strings.Contains(out, "FAIL abl-adaptive") {
		t.Fatalf("exit %d:\n%s", code, out)
	}
}

func TestGateToleratesWithinThreshold(t *testing.T) {
	dir := t.TempDir()
	b := writeReport(t, dir, "base.json", report(1.0, 2.0, 2.0, 2.0))
	c := writeReport(t, dir, "cur.json", report(1.0, 1.7, 1.7, 1.7)) // -15%
	if code, out := gate(t, "-baseline", b, "-current", c); code != 0 {
		t.Fatalf("within-threshold run failed (exit %d):\n%s", code, out)
	}
	// Same drop fails under a tighter threshold.
	if code, _ := gate(t, "-baseline", b, "-current", c, "-max-regress", "0.1"); code != 1 {
		t.Fatal("tighter threshold did not fail")
	}
}

// A slower host with proportionally slower results must pass: calibration
// scaling is what keeps a baseline recorded on different hardware usable.
func TestGateCalibrationScaling(t *testing.T) {
	dir := t.TempDir()
	b := writeReport(t, dir, "base.json", report(2.0, 4.0, 4.0, 4.0))
	c := writeReport(t, dir, "cur.json", report(1.0, 2.0, 2.0, 2.0)) // half speed, half calib
	if code, out := gate(t, "-baseline", b, "-current", c); code != 0 {
		t.Fatalf("calibrated half-speed host failed (exit %d):\n%s", code, out)
	}
	// Without calibration the same comparison is a -50% regression.
	if code, _ := gate(t, "-baseline", b, "-current", c, "-calibrate=false"); code != 1 {
		t.Fatal("uncalibrated comparison unexpectedly passed")
	}
}

func TestGateMissingExperimentFails(t *testing.T) {
	dir := t.TempDir()
	b := writeReport(t, dir, "base.json", report(1.0, 2.0))
	empty := bench.Report{CalibMtps: 1.0}
	c := writeReport(t, dir, "cur.json", empty)
	code, out := gate(t, "-baseline", b, "-current", c)
	if code != 1 || !strings.Contains(out, "missing from current report") {
		t.Fatalf("exit %d:\n%s", code, out)
	}
}

func TestGateUsageErrors(t *testing.T) {
	if code, _ := gate(t); code != 2 {
		t.Fatal("missing required flags accepted")
	}
	if code, _ := gate(t, "-baseline", "/nonexistent.json", "-current", "/nonexistent.json"); code != 2 {
		t.Fatal("unreadable report accepted")
	}
	dir := t.TempDir()
	bad := filepath.Join(dir, "bad.json")
	os.WriteFile(bad, []byte("not json"), 0o644)
	if code, _ := gate(t, "-baseline", bad, "-current", bad); code != 2 {
		t.Fatal("malformed report accepted")
	}
}

func TestCellMapSkipsNonThroughput(t *testing.T) {
	m := cellMap(bench.Table{
		Columns: []string{"workload", "Mtps", "rebalances"},
		Rows:    [][]string{{"a", "1.5", "7"}, {"b", "zero", "-"}},
	})
	if len(m) != 1 || m["a|Mtps"] != 1.5 {
		t.Fatalf("cellMap = %v", m)
	}
	// Lower-is-better latency columns must stay out of the geomean: they
	// would invert the regression direction (abl-edgescan's table shape).
	m = cellMap(bench.Table{
		Columns: []string{"task", "Mtps", "mean µs", "p99 µs"},
		Rows:    [][]string{{"8", "2.0", "100", "900"}},
	})
	if len(m) != 1 || m["8|Mtps"] != 2.0 {
		t.Fatalf("latency columns leaked into gate: %v", m)
	}
}

// A cell present in the baseline but absent from the current report must
// fail the gate even when the surviving cells look healthy — silent geomean
// shrinkage can mask a regression in exactly the vanished cells.
func TestGateFailsOnDroppedCells(t *testing.T) {
	dir := t.TempDir()
	b := writeReport(t, dir, "base.json", report(1.0, 2.0, 2.0, 2.0))
	// Current report keeps only the first two rows (drops "gaussian|Mtps")
	// with unchanged throughput elsewhere.
	cur := report(1.0, 2.0, 2.0, 2.0)
	cur.Experiments[0].Table.Rows = cur.Experiments[0].Table.Rows[:2]
	c := writeReport(t, dir, "cur.json", cur)
	code, out := gate(t, "-baseline", b, "-current", c)
	if code != 1 {
		t.Fatalf("dropped cell passed the gate (exit %d):\n%s", code, out)
	}
	if !strings.Contains(out, "missing or non-positive") || !strings.Contains(out, "gaussian|Mtps") {
		t.Fatalf("dropped cell not reported by name:\n%s", out)
	}
}

// A cell that turned non-positive (unparseable or <= 0) is dropped from
// cellMap and must fail the same way.
func TestGateFailsOnNonPositiveCell(t *testing.T) {
	dir := t.TempDir()
	b := writeReport(t, dir, "base.json", report(1.0, 2.0, 2.0, 2.0))
	cur := report(1.0, 2.0, 2.0, 2.0)
	cur.Experiments[0].Table.Rows[2][1] = "0.0000" // gaussian throughput hit zero
	c := writeReport(t, dir, "cur.json", cur)
	code, out := gate(t, "-baseline", b, "-current", c)
	if code != 1 || !strings.Contains(out, "gaussian|Mtps") {
		t.Fatalf("non-positive cell passed or was not named (exit %d):\n%s", code, out)
	}
}

// Extra cells only present in the current report (a new row in a sweep) must
// not fail the gate: coverage grew, nothing was hidden.
func TestGateToleratesExtraCurrentCells(t *testing.T) {
	dir := t.TempDir()
	b := writeReport(t, dir, "base.json", report(1.0, 2.0, 2.0))
	c := writeReport(t, dir, "cur.json", report(1.0, 2.0, 2.0, 2.0))
	if code, out := gate(t, "-baseline", b, "-current", c); code != 0 {
		t.Fatalf("grown current report failed (exit %d):\n%s", code, out)
	}
}
