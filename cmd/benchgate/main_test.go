package main

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"pimtree/internal/bench"
)

func writeReport(t *testing.T, dir, name string, r bench.Report) string {
	t.Helper()
	data, err := json.Marshal(r)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func report(calib float64, mtps ...float64) bench.Report {
	rows := make([][]string, len(mtps))
	for i, m := range mtps {
		rows[i] = []string{
			[]string{"step-skew", "drift", "gaussian"}[i%3],
			fmt.Sprintf("%.4f", m),
			"3", // rebalances column: must be ignored by the gate
		}
	}
	return bench.Report{
		CalibMtps: calib,
		Experiments: []bench.ExperimentResult{{
			Table: bench.Table{
				ID:      "abl-adaptive",
				Columns: []string{"workload", "Mtps", "rebalances"},
				Rows:    rows,
			},
		}},
	}
}

func gate(t *testing.T, args ...string) (int, string) {
	t.Helper()
	var out, errOut strings.Builder
	code := run(args, &out, &errOut)
	return code, out.String() + errOut.String()
}

func TestGatePassesOnEqualReports(t *testing.T) {
	dir := t.TempDir()
	b := writeReport(t, dir, "base.json", report(1.0, 2.0, 2.0, 2.0))
	c := writeReport(t, dir, "cur.json", report(1.0, 2.0, 2.0, 2.0))
	code, out := gate(t, "-baseline", b, "-current", c)
	if code != 0 {
		t.Fatalf("exit %d:\n%s", code, out)
	}
	if !strings.Contains(out, "pass") {
		t.Fatalf("no pass verdict:\n%s", out)
	}
}

func TestGateFailsOnRegression(t *testing.T) {
	dir := t.TempDir()
	b := writeReport(t, dir, "base.json", report(1.0, 2.0, 2.0, 2.0))
	c := writeReport(t, dir, "cur.json", report(1.0, 1.0, 1.0, 1.0)) // -50%
	code, out := gate(t, "-baseline", b, "-current", c)
	if code != 1 || !strings.Contains(out, "FAIL abl-adaptive") {
		t.Fatalf("exit %d:\n%s", code, out)
	}
}

func TestGateToleratesWithinThreshold(t *testing.T) {
	dir := t.TempDir()
	b := writeReport(t, dir, "base.json", report(1.0, 2.0, 2.0, 2.0))
	c := writeReport(t, dir, "cur.json", report(1.0, 1.7, 1.7, 1.7)) // -15%
	if code, out := gate(t, "-baseline", b, "-current", c); code != 0 {
		t.Fatalf("within-threshold run failed (exit %d):\n%s", code, out)
	}
	// Same drop fails under a tighter threshold.
	if code, _ := gate(t, "-baseline", b, "-current", c, "-max-regress", "0.1"); code != 1 {
		t.Fatal("tighter threshold did not fail")
	}
}

// A slower host with proportionally slower results must pass: calibration
// scaling is what keeps a baseline recorded on different hardware usable.
func TestGateCalibrationScaling(t *testing.T) {
	dir := t.TempDir()
	b := writeReport(t, dir, "base.json", report(2.0, 4.0, 4.0, 4.0))
	c := writeReport(t, dir, "cur.json", report(1.0, 2.0, 2.0, 2.0)) // half speed, half calib
	if code, out := gate(t, "-baseline", b, "-current", c); code != 0 {
		t.Fatalf("calibrated half-speed host failed (exit %d):\n%s", code, out)
	}
	// Without calibration the same comparison is a -50% regression.
	if code, _ := gate(t, "-baseline", b, "-current", c, "-calibrate=false"); code != 1 {
		t.Fatal("uncalibrated comparison unexpectedly passed")
	}
}

func TestGateMissingExperimentFails(t *testing.T) {
	dir := t.TempDir()
	b := writeReport(t, dir, "base.json", report(1.0, 2.0))
	empty := bench.Report{CalibMtps: 1.0}
	c := writeReport(t, dir, "cur.json", empty)
	code, out := gate(t, "-baseline", b, "-current", c)
	if code != 1 || !strings.Contains(out, "missing from current report") {
		t.Fatalf("exit %d:\n%s", code, out)
	}
}

func TestGateUsageErrors(t *testing.T) {
	if code, _ := gate(t); code != 2 {
		t.Fatal("missing required flags accepted")
	}
	if code, _ := gate(t, "-baseline", "/nonexistent.json", "-current", "/nonexistent.json"); code != 2 {
		t.Fatal("unreadable report accepted")
	}
	dir := t.TempDir()
	bad := filepath.Join(dir, "bad.json")
	os.WriteFile(bad, []byte("not json"), 0o644)
	if code, _ := gate(t, "-baseline", bad, "-current", bad); code != 2 {
		t.Fatal("malformed report accepted")
	}
}

func TestDirection(t *testing.T) {
	cases := []struct {
		col  string
		want int
	}{
		{"Mtps", dirHigher},
		{"sharded", dirHigher},
		{"offered/s", dirHigher},
		{"cap/s", dirHigher},
		{"mean µs", dirLower},
		{"p99 µs", dirLower},
		{"p50 ms", dirLower},
		{"p999 ms", dirLower},
		{"lag p99 ms", dirLower},
		{"tail latency", dirLower},
		{"nanos/op", dirLower},
		{"allocs/tuple", dirAlloc},
		{"B/tuple", dirAlloc},
		{"allocs/op", dirAlloc},
		{"B/op", dirAlloc},
		{"alloc objects", dirAlloc},
		{"rebalances", dirSkip},
		{"Rebalances", dirSkip},
		{"migrated", dirSkip},
		{"merges", dirSkip},
		{"sent", dirSkip},
		{"matches", dirSkip},
		{"trials", dirSkip},
		{"errors", dirSkip},
	}
	for _, tc := range cases {
		if got := direction(tc.col); got != tc.want {
			t.Errorf("direction(%q) = %d, want %d", tc.col, got, tc.want)
		}
	}
}

func TestCellMapSplitsByDirection(t *testing.T) {
	m := cellMap(bench.Table{
		Columns: []string{"workload", "Mtps", "rebalances"},
		Rows:    [][]string{{"a", "1.5", "7"}, {"b", "zero", "-"}},
	}, dirHigher)
	if len(m) != 1 || m["a|Mtps"] != 1.5 {
		t.Fatalf("cellMap = %v", m)
	}
	// Lower-is-better latency columns must stay out of the throughput
	// geomean: they would invert the regression direction (abl-edgescan's
	// table shape) — they form their own direction instead.
	tbl := bench.Table{
		Columns: []string{"task", "Mtps", "mean µs", "p99 µs"},
		Rows:    [][]string{{"8", "2.0", "100", "900"}},
	}
	if m := cellMap(tbl, dirHigher); len(m) != 1 || m["8|Mtps"] != 2.0 {
		t.Fatalf("latency columns leaked into throughput gate: %v", m)
	}
	if m := cellMap(tbl, dirLower); len(m) != 2 || m["8|mean µs"] != 100 || m["8|p99 µs"] != 900 {
		t.Fatalf("latency cells = %v", m)
	}
}

// A cell present in the baseline but absent from the current report must
// fail the gate even when the surviving cells look healthy — silent geomean
// shrinkage can mask a regression in exactly the vanished cells.
func TestGateFailsOnDroppedCells(t *testing.T) {
	dir := t.TempDir()
	b := writeReport(t, dir, "base.json", report(1.0, 2.0, 2.0, 2.0))
	// Current report keeps only the first two rows (drops "gaussian|Mtps")
	// with unchanged throughput elsewhere.
	cur := report(1.0, 2.0, 2.0, 2.0)
	cur.Experiments[0].Table.Rows = cur.Experiments[0].Table.Rows[:2]
	c := writeReport(t, dir, "cur.json", cur)
	code, out := gate(t, "-baseline", b, "-current", c)
	if code != 1 {
		t.Fatalf("dropped cell passed the gate (exit %d):\n%s", code, out)
	}
	if !strings.Contains(out, "missing or non-positive") || !strings.Contains(out, "gaussian|Mtps") {
		t.Fatalf("dropped cell not reported by name:\n%s", out)
	}
}

// A cell that turned non-positive (unparseable or <= 0) is dropped from
// cellMap and must fail the same way.
func TestGateFailsOnNonPositiveCell(t *testing.T) {
	dir := t.TempDir()
	b := writeReport(t, dir, "base.json", report(1.0, 2.0, 2.0, 2.0))
	cur := report(1.0, 2.0, 2.0, 2.0)
	cur.Experiments[0].Table.Rows[2][1] = "0.0000" // gaussian throughput hit zero
	c := writeReport(t, dir, "cur.json", cur)
	code, out := gate(t, "-baseline", b, "-current", c)
	if code != 1 || !strings.Contains(out, "gaussian|Mtps") {
		t.Fatalf("non-positive cell passed or was not named (exit %d):\n%s", code, out)
	}
}

// latencyReport builds a load-style report mixing a higher-is-better rate
// column with lower-is-better latency quantiles and a skipped counter.
func latencyReport(calib, offered, p50, p99 float64) bench.Report {
	return bench.Report{
		CalibMtps: calib,
		Experiments: []bench.ExperimentResult{{
			Table: bench.Table{
				ID:      "load-constant",
				Columns: []string{"scenario", "offered/s", "sent", "p50 ms", "p99 ms"},
				Rows: [][]string{{
					"constant",
					fmt.Sprintf("%.1f", offered),
					"12345",
					fmt.Sprintf("%.4f", p50),
					fmt.Sprintf("%.4f", p99),
				}},
			},
		}},
	}
}

func latencyGate(t *testing.T, base, cur bench.Report, extra ...string) (int, string) {
	t.Helper()
	dir := t.TempDir()
	b := writeReport(t, dir, "base.json", base)
	c := writeReport(t, dir, "cur.json", cur)
	args := append([]string{"-baseline", b, "-current", c, "-prefix", "load-"}, extra...)
	return gate(t, args...)
}

// Latency cells gate in the opposite direction: an increase beyond the
// threshold fails, a decrease (or an increase within it) passes.
func TestGateLatencyDirection(t *testing.T) {
	base := latencyReport(1.0, 50000, 2.0, 8.0)

	if code, out := latencyGate(t, base, latencyReport(1.0, 50000, 6.0, 24.0), "-max-lat-regress", "0.5"); code != 1 ||
		!strings.Contains(out, "FAIL load-constant    latency") {
		t.Fatalf("3x latency increase passed (exit %d):\n%s", code, out)
	}
	if code, out := latencyGate(t, base, latencyReport(1.0, 50000, 1.0, 4.0), "-max-lat-regress", "0.5"); code != 0 {
		t.Fatalf("latency improvement failed (exit %d):\n%s", code, out)
	}
	if code, out := latencyGate(t, base, latencyReport(1.0, 50000, 2.5, 10.0), "-max-lat-regress", "0.5"); code != 0 {
		t.Fatalf("within-threshold latency increase failed (exit %d):\n%s", code, out)
	}
	// A throughput drop in the same experiment still fails independently of
	// the healthy latency cells.
	if code, out := latencyGate(t, base, latencyReport(1.0, 20000, 2.0, 8.0), "-max-lat-regress", "0.5"); code != 1 ||
		!strings.Contains(out, "FAIL load-constant    throughput") {
		t.Fatalf("offered/s drop passed (exit %d):\n%s", code, out)
	}
}

// Without -max-lat-regress latency cells are reported but not gated — the
// quick-scale closed-loop ablation latencies are too noisy to gate.
func TestGateLatencyOptIn(t *testing.T) {
	base := latencyReport(1.0, 50000, 2.0, 8.0)
	code, out := latencyGate(t, base, latencyReport(1.0, 50000, 200.0, 800.0))
	if code != 0 {
		t.Fatalf("ungated latency increase failed the gate (exit %d):\n%s", code, out)
	}
	if !strings.Contains(out, "info load-constant    latency") {
		t.Fatalf("ungated latency not reported:\n%s", out)
	}
}

// Calibration scales latency inversely: a half-speed host is allowed
// proportionally higher latency, and a full-speed host claiming baseline
// latency recorded on a much slower machine is held to the scaled bound.
func TestGateLatencyCalibration(t *testing.T) {
	base := latencyReport(2.0, 4.0, 2.0, 8.0)
	// Half-speed host: half the rate, double the latency — proportional.
	if code, out := latencyGate(t, base, latencyReport(1.0, 2.0, 4.0, 16.0), "-max-lat-regress", "0.5"); code != 0 {
		t.Fatalf("calibrated half-speed host failed (exit %d):\n%s", code, out)
	}
	// Without calibration the doubled latency is a real regression.
	if code, _ := latencyGate(t, base, latencyReport(1.0, 2.0, 4.0, 16.0), "-max-lat-regress", "0.5", "-calibrate=false"); code != 1 {
		t.Fatal("uncalibrated doubled latency passed")
	}
}

// A latency cell that vanished from the current report fails the gate when
// latency is gated, exactly like a vanished throughput cell.
func TestGateLatencyDroppedCell(t *testing.T) {
	base := latencyReport(1.0, 50000, 2.0, 8.0)
	cur := latencyReport(1.0, 50000, 2.0, 8.0)
	cur.Experiments[0].Table.Rows[0][4] = "0.0000" // p99 ms hit zero
	code, out := latencyGate(t, base, cur, "-max-lat-regress", "0.5")
	if code != 1 || !strings.Contains(out, "constant|p99 ms") {
		t.Fatalf("dropped latency cell passed or was not named (exit %d):\n%s", code, out)
	}
}

// A pimload report must round-trip through the gate against itself — the
// shape CI's pimload-smoke job relies on.
func TestGateLoadReportSelfRoundTrip(t *testing.T) {
	rep := latencyReport(1.3, 48000, 1.5, 6.0)
	code, out := latencyGate(t, rep, rep, "-max-lat-regress", "0.25")
	if code != 0 || !strings.Contains(out, "pass") {
		t.Fatalf("self-comparison failed (exit %d):\n%s", code, out)
	}
}

// allocReport builds an abl-alloc-style report: a throughput column next to
// per-tuple allocation cells whose healthy value is exactly zero.
func allocReport(calib, mtps, allocs, bytes float64) bench.Report {
	return bench.Report{
		CalibMtps: calib,
		Experiments: []bench.ExperimentResult{{
			Table: bench.Table{
				ID:      "abl-alloc",
				Columns: []string{"runtime", "Mtps", "allocs/tuple", "B/tuple"},
				Rows: [][]string{{
					"serial",
					fmt.Sprintf("%.4f", mtps),
					fmt.Sprintf("%.4f", allocs),
					fmt.Sprintf("%.4f", bytes),
				}},
			},
		}},
	}
}

func allocGate(t *testing.T, base, cur bench.Report, extra ...string) (int, string) {
	t.Helper()
	dir := t.TempDir()
	b := writeReport(t, dir, "base.json", base)
	c := writeReport(t, dir, "cur.json", cur)
	return gate(t, append([]string{"-baseline", b, "-current", c}, extra...)...)
}

// A zero-allocation baseline must survive self-comparison — log-geomean
// arithmetic cannot represent 0, which is why alloc cells compare per cell.
func TestGateAllocZeroBaselineRoundTrip(t *testing.T) {
	rep := allocReport(1.0, 2.0, 0, 0)
	code, out := allocGate(t, rep, rep)
	if code != 0 || !strings.Contains(out, "alloc 2 cell(s) within threshold") {
		t.Fatalf("zero-alloc self-comparison failed (exit %d):\n%s", code, out)
	}
}

// Introducing one allocation per tuple against a zero baseline must fail —
// the regression the alloc gate exists to catch.
func TestGateAllocFailsOnIncrease(t *testing.T) {
	base := allocReport(1.0, 2.0, 0, 0)
	code, out := allocGate(t, base, allocReport(1.0, 2.0, 1.0, 48.0))
	if code != 1 || !strings.Contains(out, "serial|allocs/tuple") || !strings.Contains(out, "serial|B/tuple") {
		t.Fatalf("1 alloc/tuple regression passed or was not named (exit %d):\n%s", code, out)
	}
}

// Noise below the absolute slack on a zero baseline passes; above it fails.
func TestGateAllocSlack(t *testing.T) {
	base := allocReport(1.0, 2.0, 0, 0)
	if code, out := allocGate(t, base, allocReport(1.0, 2.0, 0.01, 0.3)); code != 0 {
		t.Fatalf("sub-slack noise failed the gate (exit %d):\n%s", code, out)
	}
	if code, _ := allocGate(t, base, allocReport(1.0, 2.0, 0.8, 0)); code != 1 {
		t.Fatal("above-slack increase passed")
	}
}

// Non-zero baselines gate proportionally, and -max-alloc-regress tightens
// the bound like -max-regress does for throughput.
func TestGateAllocProportionalThreshold(t *testing.T) {
	base := allocReport(1.0, 2.0, 8.0, 256.0)
	if code, out := allocGate(t, base, allocReport(1.0, 2.0, 9.0, 280.0)); code != 0 {
		t.Fatalf("within-threshold increase failed (exit %d):\n%s", code, out)
	}
	if code, _ := allocGate(t, base, allocReport(1.0, 2.0, 12.0, 256.0)); code != 1 {
		t.Fatal("+50% alloc increase passed the default threshold")
	}
	if code, _ := allocGate(t, base, allocReport(1.0, 2.0, 9.0, 280.0), "-max-alloc-regress", "0"); code != 1 {
		t.Fatal("tighter alloc threshold did not fail")
	}
}

// Alloc cells are never calibration-scaled: allocation counts are a property
// of the code, not of host speed, so a faster host excuses nothing.
func TestGateAllocIgnoresCalibration(t *testing.T) {
	base := allocReport(1.0, 2.0, 0, 0)
	code, _ := allocGate(t, base, allocReport(4.0, 8.0, 2.0, 64.0))
	if code != 1 {
		t.Fatal("faster-host calibration excused an alloc regression")
	}
}

// An alloc cell that vanished from the current report fails the gate, like
// dropped throughput and latency cells.
func TestGateAllocDroppedCell(t *testing.T) {
	base := allocReport(1.0, 2.0, 0, 0)
	cur := allocReport(1.0, 2.0, 0, 0)
	cur.Experiments[0].Table.Rows[0][2] = "-" // allocs/tuple unparseable
	code, out := allocGate(t, base, cur)
	if code != 1 || !strings.Contains(out, "serial|allocs/tuple") {
		t.Fatalf("dropped alloc cell passed or was not named (exit %d):\n%s", code, out)
	}
}

// Zero-valued alloc cells must be kept by cellMap — dropping them (as the
// geomean directions do) would unhook the gate exactly at its target value.
func TestCellMapKeepsZeroAllocCells(t *testing.T) {
	tbl := bench.Table{
		Columns: []string{"runtime", "Mtps", "allocs/tuple", "B/tuple"},
		Rows:    [][]string{{"serial", "2.0", "0.0000", "0.0000"}},
	}
	m := cellMap(tbl, dirAlloc)
	if len(m) != 2 {
		t.Fatalf("alloc cellMap = %v, want both zero cells", m)
	}
	if v, ok := m["serial|allocs/tuple"]; !ok || v != 0 {
		t.Fatalf("zero allocs/tuple cell dropped: %v", m)
	}
	// The throughput direction must not see the alloc columns.
	if m := cellMap(tbl, dirHigher); len(m) != 1 {
		t.Fatalf("alloc columns leaked into throughput direction: %v", m)
	}
}

// Extra cells only present in the current report (a new row in a sweep) must
// not fail the gate: coverage grew, nothing was hidden.
func TestGateToleratesExtraCurrentCells(t *testing.T) {
	dir := t.TempDir()
	b := writeReport(t, dir, "base.json", report(1.0, 2.0, 2.0))
	c := writeReport(t, dir, "cur.json", report(1.0, 2.0, 2.0, 2.0))
	if code, out := gate(t, "-baseline", b, "-current", c); code != 0 {
		t.Fatalf("grown current report failed (exit %d):\n%s", code, out)
	}
}

// tuneReport builds an abl-tune-style report: throughput columns beside
// per-cell imbalance ratios and a decisions counter.
func tuneReport(calib, staticMtps, autoMtps, staticImb, autoImb float64) bench.Report {
	return bench.Report{
		CalibMtps: calib,
		Experiments: []bench.ExperimentResult{{
			Table: bench.Table{
				ID:      "abl-tune",
				Columns: []string{"workload", "static", "autotune", "static imbalance", "auto imbalance", "decisions"},
				Rows: [][]string{{
					"drift-hotspot",
					fmt.Sprintf("%.4f", staticMtps),
					fmt.Sprintf("%.4f", autoMtps),
					fmt.Sprintf("%.4f", staticImb),
					fmt.Sprintf("%.4f", autoImb),
					"3",
				}},
			},
		}},
	}
}

// Imbalance ratios gate per cell like allocations: self-comparison passes,
// the controller's balanced outcome regressing to one-hot-shard fails, and
// jitter under the absolute slack is tolerated.
func TestGateImbalanceCells(t *testing.T) {
	base := tuneReport(1.0, 2.0, 2.2, 4.0, 1.1)
	if code, out := allocGate(t, base, base); code != 0 || !strings.Contains(out, "imbalance 2 cell(s) within threshold") {
		t.Fatalf("imbalance self-comparison failed (exit %d):\n%s", code, out)
	}
	// AutoTune stops rebalancing: auto imbalance collapses to the static
	// value — the regression the gate exists to catch.
	code, out := allocGate(t, base, tuneReport(1.0, 2.0, 2.2, 4.0, 4.0))
	if code != 1 || !strings.Contains(out, "drift-hotspot|auto imbalance") {
		t.Fatalf("imbalance regression passed or was not named (exit %d):\n%s", code, out)
	}
	// Rebalance-timing jitter below the slack is noise, not a regression.
	if code, out := allocGate(t, base, tuneReport(1.0, 2.0, 2.2, 4.3, 1.5)); code != 0 {
		t.Fatalf("sub-slack imbalance jitter failed the gate (exit %d):\n%s", code, out)
	}
	// -max-imb-regress tightens the bound; calibration excuses nothing.
	if code, _ := allocGate(t, base, tuneReport(4.0, 8.0, 8.8, 4.0, 2.5)); code != 1 {
		t.Fatal("faster-host calibration excused an imbalance regression")
	}
}

// The decisions column is an event counter: its drift is not a regression
// in either direction and it never enters a geomean.
func TestGateDecisionsCounterSkipped(t *testing.T) {
	if got := direction("decisions"); got != dirSkip {
		t.Fatalf("direction(decisions) = %d, want dirSkip", got)
	}
	base := tuneReport(1.0, 2.0, 2.2, 4.0, 1.1)
	cur := tuneReport(1.0, 2.0, 2.2, 4.0, 1.1)
	cur.Experiments[0].Table.Rows[0][5] = "40"
	if code, out := allocGate(t, base, cur); code != 0 {
		t.Fatalf("decisions drift failed the gate (exit %d):\n%s", code, out)
	}
}

// Imbalance columns classify into their own direction, away from the
// throughput geomean whose regression direction they would invert.
func TestDirectionImbalance(t *testing.T) {
	for col, want := range map[string]int{
		"static imbalance": dirImb,
		"auto imbalance":   dirImb,
		"Imbalance":        dirImb,
		"static":           dirHigher,
		"autotune":         dirHigher,
	} {
		if got := direction(col); got != want {
			t.Errorf("direction(%q) = %d, want %d", col, got, want)
		}
	}
}
