// Command pimbench regenerates the paper's evaluation figures plus this
// repository's own ablations (including the sharded-vs-shared runtime and
// static-vs-adaptive rebalancing comparisons). Each experiment prints the
// series the corresponding figure plots, as a tab-separated table (see
// README.md for the experiment list and docs/ARCHITECTURE.md for the
// paper-to-package mapping).
//
// Usage:
//
//	pimbench -list
//	pimbench -exp fig10a [-scale quick|default|paper] [-threads N] [-seed S]
//	pimbench -all [-scale quick] [-json bench.json]
//
// With -json, the run also writes a machine-readable report (parsed tables,
// per-experiment runtime, and a host-speed calibration) in the format of the
// committed BENCH_*.json baselines; cmd/benchgate compares two such reports
// and fails on throughput regressions.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"time"

	"pimtree/internal/bench"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("pimbench", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		expID    = fs.String("exp", "", "experiment id to run (e.g. fig8a); see -list")
		all      = fs.Bool("all", false, "run every experiment")
		list     = fs.Bool("list", false, "list experiments and exit")
		scale    = fs.String("scale", "default", "sweep scale: quick | default | paper")
		threads  = fs.Int("threads", 0, "worker threads for parallel joins (0 = GOMAXPROCS)")
		seed     = fs.Int64("seed", 42, "workload seed")
		jsonPath = fs.String("json", "", "also write a machine-readable report to this file")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}

	if *list {
		for _, e := range bench.All() {
			fmt.Fprintf(stdout, "%-16s %s\n", e.ID, e.Title)
		}
		return 0
	}

	sc, err := bench.ParseScale(*scale)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 2
	}
	cfg := bench.Config{Scale: sc, Threads: *threads, Seed: *seed}

	var exps []bench.Experiment
	switch {
	case *all:
		exps = bench.All()
	case *expID != "":
		e, ok := bench.ByID(*expID)
		if !ok {
			fmt.Fprintf(stderr, "pimbench: unknown experiment %q; use -list\n", *expID)
			return 2
		}
		exps = []bench.Experiment{e}
	default:
		fmt.Fprintln(stderr, "pimbench: pass -exp <id>, -all, or -list")
		return 2
	}

	var report *bench.Report
	if *jsonPath != "" {
		report = bench.NewReport(*scale, effectiveThreads(*threads), *seed)
	}

	fmt.Fprintf(stdout, "# pimbench: scale=%s threads=%d GOMAXPROCS=%d seed=%d\n",
		*scale, effectiveThreads(*threads), runtime.GOMAXPROCS(0), *seed)

	for _, e := range exps {
		var buf bytes.Buffer
		out := io.Writer(stdout)
		if report != nil {
			out = io.MultiWriter(stdout, &buf)
		}
		start := time.Now()
		e.Run(cfg, out)
		elapsed := time.Since(start)
		if *all {
			fmt.Fprintf(stdout, "# (%s took %v)\n\n", e.ID, elapsed.Round(time.Millisecond))
		}
		if report != nil {
			if err := report.Add(buf.String(), elapsed); err != nil {
				fmt.Fprintf(stderr, "pimbench: %s: %v\n", e.ID, err)
				return 1
			}
		}
	}

	if report != nil {
		if err := writeReport(*jsonPath, report); err != nil {
			fmt.Fprintln(stderr, "pimbench:", err)
			return 1
		}
		fmt.Fprintf(stdout, "# report written to %s\n", *jsonPath)
	}
	return 0
}

func writeReport(path string, r *bench.Report) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

func effectiveThreads(n int) int {
	if n > 0 {
		return n
	}
	return runtime.GOMAXPROCS(0)
}
