// Command pimbench regenerates the paper's evaluation figures plus this
// repository's own ablations (including the sharded-vs-shared runtime
// comparison). Each experiment prints the series the corresponding figure
// plots, as a tab-separated table (see README.md for the experiment list
// and docs/ARCHITECTURE.md for the paper-to-package mapping).
//
// Usage:
//
//	pimbench -list
//	pimbench -exp fig10a [-scale quick|default|paper] [-threads N] [-seed S]
//	pimbench -all [-scale quick]
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"pimtree/internal/bench"
)

func main() {
	var (
		expID   = flag.String("exp", "", "experiment id to run (e.g. fig8a); see -list")
		all     = flag.Bool("all", false, "run every experiment")
		list    = flag.Bool("list", false, "list experiments and exit")
		scale   = flag.String("scale", "default", "sweep scale: quick | default | paper")
		threads = flag.Int("threads", 0, "worker threads for parallel joins (0 = GOMAXPROCS)")
		seed    = flag.Int64("seed", 42, "workload seed")
	)
	flag.Parse()

	if *list {
		for _, e := range bench.All() {
			fmt.Printf("%-16s %s\n", e.ID, e.Title)
		}
		return
	}

	sc, err := bench.ParseScale(*scale)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	cfg := bench.Config{Scale: sc, Threads: *threads, Seed: *seed}

	fmt.Printf("# pimbench: scale=%s threads=%d GOMAXPROCS=%d seed=%d\n",
		*scale, effectiveThreads(*threads), runtime.GOMAXPROCS(0), *seed)

	switch {
	case *all:
		for _, e := range bench.All() {
			start := time.Now()
			e.Run(cfg, os.Stdout)
			fmt.Printf("# (%s took %v)\n\n", e.ID, time.Since(start).Round(time.Millisecond))
		}
	case *expID != "":
		e, ok := bench.ByID(*expID)
		if !ok {
			fmt.Fprintf(os.Stderr, "pimbench: unknown experiment %q; use -list\n", *expID)
			os.Exit(2)
		}
		e.Run(cfg, os.Stdout)
	default:
		fmt.Fprintln(os.Stderr, "pimbench: pass -exp <id>, -all, or -list")
		os.Exit(2)
	}
}

func effectiveThreads(n int) int {
	if n > 0 {
		return n
	}
	return runtime.GOMAXPROCS(0)
}
