package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"pimtree/internal/bench"
)

func TestRunList(t *testing.T) {
	var out, errOut strings.Builder
	if code := run([]string{"-list"}, &out, &errOut); code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errOut.String())
	}
	for _, id := range []string{"fig8a", "abl-sharded", "abl-adaptive"} {
		if !strings.Contains(out.String(), id) {
			t.Fatalf("-list output missing %s:\n%s", id, out.String())
		}
	}
}

func TestRunBadInputs(t *testing.T) {
	cases := [][]string{
		{},                                  // no mode selected
		{"-exp", "nope"},                    // unknown experiment
		{"-exp", "fig8a", "-scale", "warp"}, // unknown scale
		{"-bogusflag"},                      // flag parse error
	}
	for _, args := range cases {
		var out, errOut strings.Builder
		if code := run(args, &out, &errOut); code != 2 {
			t.Fatalf("args %v: exit %d, want 2 (stderr: %s)", args, code, errOut.String())
		}
		if errOut.Len() == 0 {
			t.Fatalf("args %v: no diagnostic on stderr", args)
		}
	}
}

func TestRunSingleExperiment(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment run skipped in -short mode")
	}
	var out, errOut strings.Builder
	if code := run([]string{"-exp", "abl-adaptive", "-scale", "quick", "-threads", "2", "-seed", "7"},
		&out, &errOut); code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errOut.String())
	}
	s := out.String()
	if !strings.Contains(s, "# abl-adaptive") || !strings.Contains(s, "step-skew") {
		t.Fatalf("experiment output incomplete:\n%s", s)
	}
}

func TestRunJSONReport(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment run skipped in -short mode")
	}
	path := filepath.Join(t.TempDir(), "bench.json")
	var out, errOut strings.Builder
	code := run([]string{"-exp", "abl-adaptive", "-scale", "quick", "-threads", "2", "-json", path},
		&out, &errOut)
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errOut.String())
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var rep bench.Report
	if err := json.Unmarshal(data, &rep); err != nil {
		t.Fatalf("report not valid JSON: %v", err)
	}
	if rep.Scale != "quick" || rep.Threads != 2 || rep.Seed != 42 {
		t.Fatalf("report config = %+v", rep)
	}
	if rep.CalibMtps <= 0 {
		t.Fatal("report missing host calibration")
	}
	if len(rep.Experiments) != 1 || rep.Experiments[0].ID != "abl-adaptive" {
		t.Fatalf("experiments = %+v", rep.Experiments)
	}
	if len(rep.Experiments[0].Rows) != 3 {
		t.Fatalf("abl-adaptive rows = %v", rep.Experiments[0].Rows)
	}
}

func TestEffectiveThreads(t *testing.T) {
	if effectiveThreads(3) != 3 {
		t.Fatal("explicit thread count not honored")
	}
	if effectiveThreads(0) < 1 {
		t.Fatal("default thread count must be positive")
	}
}
