package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"strings"
	"time"

	"pimtree"
	"pimtree/internal/cluster"
	"pimtree/internal/server"
)

// routeReady, when set (tests), observes the started router before the
// command blocks on the shutdown signal.
var routeReady func(s *server.Server, fe *cluster.Frontend)

// runRoute is the `pimjoin route` subcommand: the cluster tier's router. It
// speaks the same client protocol as `pimjoin serve` on -addr, but instead
// of a local engine it key-range-partitions ingest across the serve nodes
// in -nodes (each hosting a member session), merges their match streams
// into one ordered feed, and tracks the global watermark frontier. The
// admin endpoint adds /cluster (membership map), /cluster/join, and
// /cluster/leave on top of the usual /stats, /metrics, /healthz, /tuning.
func runRoute(ctx context.Context, args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("pimjoin route", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		addr   = fs.String("addr", "127.0.0.1:9050", "TCP listen address of the binary ingest/egress protocol")
		admin  = fs.String("admin", "", "HTTP admin listen address serving /stats, /metrics, /cluster (empty disables)")
		nodes  = fs.String("nodes", "", "comma-separated serve-node addresses (required)")
		nodeID = fs.String("node-id", "", "router identity in /stats and /healthz (default: the listen address)")

		w        = fs.Int("w", 1<<16, "window length (both streams)")
		ws       = fs.Int("ws", 0, "stream-S window length (0 = same as -w)")
		sigma    = fs.Float64("sigma", 2, "target match rate (sets the band width)")
		diffFlag = fs.Uint("diff", 0, "explicit band half-width (overrides -sigma)")
		backend  = fs.String("backend", "pim", "index backend on the nodes: pim | im | btree | bwtree")
		self     = fs.Bool("self", false, "self-join instead of two-way")
		span     = fs.Uint64("span", 0, "time-window duration (> 0 selects timed mode)")
		maxLive  = fs.Int("maxlive", 0, "live-tuple bound per window (timed mode)")
		slack    = fs.Uint64("slack", 0, "tolerated event-time disorder in timed mode (enables LateDrop)")

		nodeShards = fs.Int("node-shards", 0, "sub-shards per node (0 = node GOMAXPROCS)")
		batch      = fs.Int("batch", 0, "ops per node before an eager flush (0 = default 64)")
		queue      = fs.Int("queue", 0, "router in-flight bound (0 = default 16384)")
		nodeQueue  = fs.Int("node-queue", 0, "per-node member in-flight bound (0 = node default)")

		dialTimeout = fs.Duration("dial-timeout", 15*time.Second, "per-node dial budget including retries")
		pingEvery   = fs.Duration("ping-every", time.Second, "health-probe cadence")
		failAfter   = fs.Int("fail-after", 5, "consecutive failed probes before a node is declared down")
		degrade     = fs.String("degrade", "fail", "routing policy once a node is down: fail | shed")

		subQueue     = fs.Int("sub-queue", 0, "per-subscriber match queue capacity (0 = default 1024)")
		subPolicy    = fs.String("sub-policy", "drop", "slow-subscriber policy: drop | block")
		statsEvery   = fs.Duration("stats-every", 0, "print a live stats line to stderr at this interval (e.g. 5s)")
		drainTimeout = fs.Duration("drain-timeout", 30*time.Second, "graceful-shutdown bound after SIGINT/SIGTERM")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() > 0 {
		fmt.Fprintf(stderr, "pimjoin route: unexpected argument %q\n", fs.Arg(0))
		return 2
	}
	addrs := strings.Split(*nodes, ",")
	for i := range addrs {
		addrs[i] = strings.TrimSpace(addrs[i])
	}
	addrs = nonEmpty(addrs)
	if len(addrs) == 0 {
		fmt.Fprintln(stderr, "pimjoin route: -nodes requires at least one serve-node address")
		return 2
	}
	if *ws == 0 {
		*ws = *w
	}
	be, ok := backendByName(*backend)
	if !ok {
		fmt.Fprintf(stderr, "pimjoin route: unknown backend %q\n", *backend)
		return 2
	}
	var slow server.SlowPolicy
	switch *subPolicy {
	case "drop":
		slow = server.DropNewest
	case "block":
		slow = server.Block
	default:
		fmt.Fprintf(stderr, "pimjoin route: unknown -sub-policy %q (drop|block)\n", *subPolicy)
		return 2
	}
	var policy cluster.DegradePolicy
	switch *degrade {
	case "fail":
		policy = cluster.Fail
	case "shed":
		policy = cluster.Shed
	default:
		fmt.Fprintf(stderr, "pimjoin route: unknown -degrade %q (fail|shed)\n", *degrade)
		return 2
	}

	cfg := cluster.Config{
		Nodes: addrs,
		Timed: *span > 0, Self: *self,
		WR: *w, WS: *ws,
		Span: *span, MaxLive: *maxLive,
		Diff:    uint32(*diffFlag),
		Backend: be,
		Slack:   *slack,

		LocalShards: *nodeShards,
		BatchSize:   *batch,
		Capacity:    *queue,
		NodeRing:    *nodeQueue,

		DialTimeout:  *dialTimeout,
		PingInterval: *pingEvery,
		FailAfter:    *failAfter,
		Degrade:      policy,
		Logf: func(format string, a ...any) {
			fmt.Fprintf(stderr, "pimjoin "+format+"\n", a...)
		},
	}
	if cfg.Diff == 0 {
		cfg.Diff = pimtree.DiffForMatchRate(*w, *sigma)
	}
	if cfg.Slack > 0 {
		cfg.LatePolicy = pimtree.LateDrop
	}

	fe, err := cluster.New(cfg)
	if err != nil {
		fmt.Fprintln(stderr, "pimjoin route:", err)
		return 1
	}
	srv, err := server.New(fe, server.Options{
		Addr:            *addr,
		AdminAddr:       *admin,
		SubscriberQueue: *subQueue,
		Slow:            slow,
		NodeID:          *nodeID,
		Role:            "route",
		AdminMux:        fe.AdminMux,
		ExtraProm:       fe.PromFamilies,
		Logf: func(format string, a ...any) {
			fmt.Fprintf(stderr, "pimjoin "+format+"\n", a...)
		},
	})
	if err != nil {
		fe.Close(context.Background())
		fmt.Fprintln(stderr, "pimjoin route:", err)
		return 1
	}
	adminStr := ""
	if srv.AdminAddr() != nil {
		adminStr = " admin=http://" + srv.AdminAddr().String()
	}
	fmt.Fprintf(stdout, "pimjoin route: mode=%s addr=%s nodes=%d%s\n", fe.Mode(), srv.Addr(), len(addrs), adminStr)
	if routeReady != nil {
		routeReady(srv, fe)
	}

	if *statsEvery > 0 {
		ticker := time.NewTicker(*statsEvery)
		defer ticker.Stop()
		go func() {
			for {
				select {
				case <-ticker.C:
					st := fe.Stats()
					frontier, known := fe.GlobalFrontier()
					line := fmt.Sprintf("%d tuples, %d matches, %.3f Mtps, nodes %d, imbalance %.2f",
						st.Tuples, st.Matches, st.Mtps, fe.Tuning().Shards, st.Imbalance)
					if known {
						line += fmt.Sprintf(", frontier %d", frontier)
					}
					fmt.Fprintln(stderr, "pimjoin:", line)
				case <-ctx.Done():
					return
				}
			}
		}()
	}

	<-ctx.Done()
	fmt.Fprintln(stderr, "pimjoin route: signal received, draining")
	sctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	st, err := srv.Shutdown(sctx)
	if err != nil {
		fmt.Fprintln(stderr, "pimjoin route: shutdown:", err)
		return 1
	}
	fmt.Fprintf(stderr, "pimjoin route: mode=%s tuples=%d matches=%d elapsed=%v (%.3f Mtps)\n",
		fe.Mode(), st.Tuples, st.Matches, st.Elapsed.Round(time.Millisecond), st.Mtps)
	if st.LateDropped > 0 || st.MaxObservedDisorder > 0 {
		fmt.Fprintf(stderr, "pimjoin route: late=%d max-disorder=%d\n", st.LateDropped, st.MaxObservedDisorder)
	}
	return 0
}

// nonEmpty filters out empty strings in place.
func nonEmpty(ss []string) []string {
	out := ss[:0]
	for _, s := range ss {
		if s != "" {
			out = append(out, s)
		}
	}
	return out
}
