// Command pimjoin runs an ad-hoc sliding-window band join over synthetic
// streams and prints throughput, match counts, and (for parallel runs)
// latency — a command-line harness around the public pimtree API.
//
// Examples:
//
//	pimjoin -n 1000000 -w 65536 -sigma 2                       # serial PIM-Tree join
//	pimjoin -n 1000000 -w 65536 -backend btree                 # serial B+-Tree baseline
//	pimjoin -n 1000000 -w 65536 -parallel -threads 4           # shared-index parallel join
//	pimjoin -n 500000 -w 16384 -self -dist gaussian            # skewed self-join
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"pimtree"
)

func main() {
	var (
		n        = flag.Int("n", 1_000_000, "tuples to process")
		w        = flag.Int("w", 1<<16, "window length (both streams)")
		ws       = flag.Int("ws", 0, "stream-S window length (0 = same as -w)")
		sigma    = flag.Float64("sigma", 2, "target match rate (sets the band width)")
		diffFlag = flag.Uint("diff", 0, "explicit band half-width (overrides -sigma)")
		backend  = flag.String("backend", "pim", "index backend: pim | im | btree | bwtree | bchain | ibchain")
		self     = flag.Bool("self", false, "self-join instead of two-way")
		dist     = flag.String("dist", "uniform", "key distribution: uniform | gaussian | gamma33 | gamma15")
		parallel = flag.Bool("parallel", false, "use the multicore shared-index join")
		threads  = flag.Int("threads", 0, "worker threads for -parallel (0 = GOMAXPROCS)")
		task     = flag.Int("task", 8, "task size for -parallel")
		blocking = flag.Bool("blocking-merge", false, "use blocking merges in -parallel")
		seed     = flag.Int64("seed", 42, "workload seed")
		trace    = flag.String("trace", "", "replay a CSV trace (see pimtrace) instead of generating tuples")
	)
	flag.Parse()

	if *ws == 0 {
		*ws = *w
	}
	mkSource := sourceFactory(*dist)
	if mkSource == nil {
		fmt.Fprintf(os.Stderr, "pimjoin: unknown distribution %q\n", *dist)
		os.Exit(2)
	}

	diff := uint32(*diffFlag)
	if diff == 0 {
		if *dist == "uniform" {
			diff = pimtree.DiffForMatchRate(*w, *sigma)
		} else {
			diff = pimtree.CalibrateDiff(mkSource, *w, *sigma)
		}
	}

	var arrivals []pimtree.Arrival
	if *trace != "" {
		f, err := os.Open(*trace)
		if err != nil {
			fmt.Fprintln(os.Stderr, "pimjoin:", err)
			os.Exit(1)
		}
		arrivals, err = pimtree.ReadArrivalsCSV(f)
		f.Close()
		if err != nil {
			fmt.Fprintln(os.Stderr, "pimjoin:", err)
			os.Exit(1)
		}
		*n = len(arrivals)
	} else if *self {
		arrivals = pimtree.SelfArrivals(mkSource(*seed+1), *n)
	} else {
		arrivals = pimtree.Interleave(*seed, mkSource(*seed+1), mkSource(*seed+2), 0.5, *n)
	}

	fmt.Printf("pimjoin: n=%d wR=%d wS=%d diff=%d backend=%s dist=%s self=%v parallel=%v\n",
		*n, *w, *ws, diff, *backend, *dist, *self, *parallel)

	if *parallel {
		st, err := pimtree.RunParallel(arrivals, pimtree.ParallelOptions{
			Threads: *threads, TaskSize: *task,
			WindowR: *w, WindowS: *ws, Self: *self, Diff: diff,
			UseBwTree:     strings.EqualFold(*backend, "bwtree"),
			BlockingMerge: *blocking,
			RecordLatency: true,
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, "pimjoin:", err)
			os.Exit(1)
		}
		fmt.Printf("  throughput: %.3f Mtps  (%d tuples in %v)\n", st.Mtps, st.Tuples, st.Elapsed.Round(time.Millisecond))
		fmt.Printf("  matches:    %d (%.3f per tuple)\n", st.Matches, float64(st.Matches)/float64(st.Tuples))
		fmt.Printf("  merges:     %d (%v total)\n", st.Merges, st.MergeTime.Round(time.Microsecond))
		fmt.Printf("  latency:    mean %.1f µs, p99 %.1f µs\n", st.MeanMicros, st.P99Micros)
		return
	}

	be, ok := backendByName(*backend)
	if !ok {
		fmt.Fprintf(os.Stderr, "pimjoin: unknown backend %q\n", *backend)
		os.Exit(2)
	}
	j, err := pimtree.NewJoin(pimtree.JoinOptions{
		WindowR: *w, WindowS: *ws, Self: *self, Diff: diff, Backend: be,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "pimjoin:", err)
		os.Exit(1)
	}
	start := time.Now()
	for _, a := range arrivals {
		j.Push(a.Stream, a.Key)
	}
	elapsed := time.Since(start)
	merges, mergeTime := j.Merges()
	fmt.Printf("  throughput: %.3f Mtps  (%d tuples in %v)\n",
		float64(*n)/elapsed.Seconds()/1e6, *n, elapsed.Round(time.Millisecond))
	fmt.Printf("  matches:    %d (%.3f per tuple)\n", j.Matches(), float64(j.Matches())/float64(*n))
	fmt.Printf("  merges:     %d (%v total)\n", merges, mergeTime.Round(time.Microsecond))
}

func sourceFactory(dist string) func(int64) pimtree.KeySource {
	switch strings.ToLower(dist) {
	case "uniform":
		return func(s int64) pimtree.KeySource { return pimtree.UniformSource(s) }
	case "gaussian":
		return func(s int64) pimtree.KeySource { return pimtree.GaussianSource(s, 0.5, 0.125) }
	case "gamma33":
		return func(s int64) pimtree.KeySource { return pimtree.GammaSource(s, 3, 3) }
	case "gamma15":
		return func(s int64) pimtree.KeySource { return pimtree.GammaSource(s, 1, 5) }
	default:
		return nil
	}
}

func backendByName(name string) (pimtree.Backend, bool) {
	switch strings.ToLower(name) {
	case "pim", "pimtree":
		return pimtree.PIMTree, true
	case "im", "imtree":
		return pimtree.IMTree, true
	case "btree", "b+tree", "bplustree":
		return pimtree.BPlusTree, true
	case "bwtree", "bw":
		return pimtree.BwTree, true
	case "bchain":
		return pimtree.BChain, true
	case "ibchain":
		return pimtree.IBChain, true
	default:
		return pimtree.PIMTree, false
	}
}
