// Command pimjoin runs a sliding-window band join over synthetic streams or
// live stdin input and prints throughput, match counts, and (for parallel
// runs) latency — a command-line harness around the public pimtree API.
//
// Batch examples (synthetic workloads, whole-run statistics):
//
//	pimjoin -n 1000000 -w 65536 -sigma 2                       # serial PIM-Tree join
//	pimjoin -n 1000000 -w 65536 -backend btree                 # serial B+-Tree baseline
//	pimjoin -n 1000000 -w 65536 -parallel -threads 4           # shared-index parallel join
//	pimjoin -n 500000 -w 16384 -self -dist gaussian            # skewed self-join
//
// Streaming mode (-stdin) turns pimjoin into a long-lived engine session:
// arrivals are read incrementally from stdin (`stream,key` lines, or
// `stream,key,ts` with -mode sharded-time), joined as they arrive through
// pimtree.Open, and matches stream back out as `probeStream,probeSeq,matchSeq`
// lines (-emit). EOF drains the engine and prints final statistics:
//
//	pimtrace -n 100000 | pimjoin -stdin -w 4096 -emit
//	tail -f arrivals.csv | pimjoin -stdin -w 65536 -mode sharded -stats-every 100000
//
// The serve subcommand exposes the same long-lived engine over the network:
// a TCP listener speaking the length-prefixed binary ingest/egress protocol
// (wire spec in docs/OPERATIONS.md) and an optional HTTP admin endpoint
// with /stats, /metrics (Prometheus), and /healthz. SIGINT/SIGTERM drains
// the engine gracefully before exiting:
//
//	pimjoin serve -addr :9040 -admin :9041 -w 65536 -mode sharded
//	pimjoin serve -addr :9040 -mode sharded-time -span 2000000000 -maxlive 65536 -slack 50000000
package main

import (
	"bufio"
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"pimtree"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdin, os.Stdout, os.Stderr))
}

func run(args []string, stdin io.Reader, stdout, stderr io.Writer) int {
	if len(args) > 0 && args[0] == "serve" {
		ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
		defer stop()
		return runServe(ctx, args[1:], stdout, stderr)
	}
	if len(args) > 0 && args[0] == "route" {
		ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
		defer stop()
		return runRoute(ctx, args[1:], stdout, stderr)
	}
	fs := flag.NewFlagSet("pimjoin", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		n        = fs.Int("n", 1_000_000, "tuples to process (batch mode)")
		w        = fs.Int("w", 1<<16, "window length (both streams)")
		ws       = fs.Int("ws", 0, "stream-S window length (0 = same as -w)")
		sigma    = fs.Float64("sigma", 2, "target match rate (sets the band width)")
		diffFlag = fs.Uint("diff", 0, "explicit band half-width (overrides -sigma)")
		backend  = fs.String("backend", "pim", "index backend: pim | im | btree | bwtree | bchain | ibchain")
		self     = fs.Bool("self", false, "self-join instead of two-way")
		dist     = fs.String("dist", "uniform", "key distribution: uniform | gaussian | gamma33 | gamma15")
		parallel = fs.Bool("parallel", false, "use the multicore shared-index join (batch mode)")
		threads  = fs.Int("threads", 0, "worker threads for -parallel (0 = GOMAXPROCS)")
		task     = fs.Int("task", 8, "task size for -parallel")
		blocking = fs.Bool("blocking-merge", false, "use blocking merges in -parallel")
		seed     = fs.Int64("seed", 42, "workload seed")
		trace    = fs.String("trace", "", "replay a CSV trace (see pimtrace) instead of generating tuples")

		stdinMode  = fs.Bool("stdin", false, "streaming mode: read stream,key[,ts] lines from stdin through a long-lived engine")
		mode       = fs.String("mode", "auto", "engine mode for -stdin: auto | serial | shared | sharded | sharded-time")
		emit       = fs.Bool("emit", false, "streaming mode: write matches to stdout as probeStream,probeSeq,matchSeq lines")
		statsEvery = fs.Int("stats-every", 0, "streaming mode: print a live Stats snapshot to stderr every N tuples")
		span       = fs.Uint64("span", 0, "time-window duration for -mode sharded-time")
		maxLive    = fs.Int("maxlive", 0, "live-tuple bound per window for -mode sharded-time")
		slack      = fs.Uint64("slack", 0, "tolerated event-time disorder for -mode sharded-time (enables LateDrop)")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}

	if *ws == 0 {
		*ws = *w
	}
	be, ok := backendByName(*backend)
	if !ok {
		fmt.Fprintf(stderr, "pimjoin: unknown backend %q\n", *backend)
		return 2
	}
	setFlags := map[string]bool{}
	fs.Visit(func(f *flag.Flag) { setFlags[f.Name] = true })
	if !*stdinMode {
		// The mirror of the -stdin guard below: streaming-only flags on the
		// batch path would be silently ignored.
		for _, streamOnly := range []string{"mode", "emit", "stats-every", "span", "maxlive", "slack"} {
			if setFlags[streamOnly] {
				fmt.Fprintf(stderr, "pimjoin: -%s is a streaming-mode flag and has no effect without -stdin\n", streamOnly)
				return 2
			}
		}
	}

	if *stdinMode {
		m, ok := modeByName(*mode)
		if !ok {
			fmt.Fprintf(stderr, "pimjoin: unknown mode %q\n", *mode)
			return 2
		}
		if (*span > 0 || *maxLive > 0 || *slack > 0) &&
			m != pimtree.ModeShardedTime && !(m == pimtree.ModeAuto && *span > 0) {
			fmt.Fprintln(stderr, "pimjoin: -span/-maxlive/-slack require -mode sharded-time (or -mode auto with -span)")
			return 2
		}
		// Batch-only flags alongside -stdin would be silently ignored —
		// reject them so a user who thinks they replayed a trace (or chose
		// the batch parallel driver) finds out immediately.
		for _, batchOnly := range []string{"trace", "parallel", "n", "dist", "seed"} {
			if setFlags[batchOnly] {
				fmt.Fprintf(stderr, "pimjoin: -%s is a batch-mode flag and has no effect with -stdin\n", batchOnly)
				return 2
			}
		}
		cfg := pimtree.Config{
			Mode:    m,
			WindowR: *w, WindowS: *ws,
			Self:          *self,
			Diff:          uint32(*diffFlag),
			Backend:       be,
			Threads:       *threads,
			BlockingMerge: *blocking,
			Span:          *span,
			MaxLive:       *maxLive,
			Slack:         *slack,
			// Without -emit nothing consumes individual matches; keep the
			// runtimes on their count-only fast path.
			DiscardMatches: !*emit,
		}
		// -task has a non-zero default; passing it through unconditionally
		// would read as a shared-mode knob and steer ModeAuto away from the
		// documented multicore default (sharded). Only forward it when the
		// user actually asked for it (or pinned shared mode).
		if setFlags["task"] || m == pimtree.ModeShared {
			cfg.TaskSize = *task
		}
		if cfg.Diff == 0 {
			cfg.Diff = pimtree.DiffForMatchRate(*w, *sigma)
		}
		if cfg.Slack > 0 {
			cfg.LatePolicy = pimtree.LateDrop
		}
		if err := runStream(cfg, stdin, stdout, stderr, *emit, *statsEvery); err != nil {
			fmt.Fprintln(stderr, "pimjoin:", err)
			return 1
		}
		return 0
	}

	mkSource := sourceFactory(*dist)
	if mkSource == nil {
		fmt.Fprintf(stderr, "pimjoin: unknown distribution %q\n", *dist)
		return 2
	}

	diff := uint32(*diffFlag)
	if diff == 0 {
		if *dist == "uniform" {
			diff = pimtree.DiffForMatchRate(*w, *sigma)
		} else {
			diff = pimtree.CalibrateDiff(mkSource, *w, *sigma)
		}
	}

	var arrivals []pimtree.Arrival
	if *trace != "" {
		f, err := os.Open(*trace)
		if err != nil {
			fmt.Fprintln(stderr, "pimjoin:", err)
			return 1
		}
		arrivals, err = pimtree.ReadArrivalsCSV(f)
		f.Close()
		if err != nil {
			fmt.Fprintln(stderr, "pimjoin:", err)
			return 1
		}
		*n = len(arrivals)
	} else if *self {
		arrivals = pimtree.SelfArrivals(mkSource(*seed+1), *n)
	} else {
		arrivals = pimtree.Interleave(*seed, mkSource(*seed+1), mkSource(*seed+2), 0.5, *n)
	}

	fmt.Fprintf(stdout, "pimjoin: n=%d wR=%d wS=%d diff=%d backend=%s dist=%s self=%v parallel=%v\n",
		*n, *w, *ws, diff, *backend, *dist, *self, *parallel)

	if *parallel {
		st, err := pimtree.RunParallel(arrivals, pimtree.ParallelOptions{
			Threads: *threads, TaskSize: *task,
			WindowR: *w, WindowS: *ws, Self: *self, Diff: diff,
			Backend:       be,
			BlockingMerge: *blocking,
			RecordLatency: true,
		})
		if err != nil {
			fmt.Fprintln(stderr, "pimjoin:", err)
			return 1
		}
		fmt.Fprintf(stdout, "  throughput: %.3f Mtps  (%d tuples in %v)\n", st.Mtps, st.Tuples, st.Elapsed.Round(time.Millisecond))
		fmt.Fprintf(stdout, "  matches:    %d (%.3f per tuple)\n", st.Matches, float64(st.Matches)/float64(st.Tuples))
		fmt.Fprintf(stdout, "  merges:     %d (%v total)\n", st.Merges, st.MergeTime.Round(time.Microsecond))
		fmt.Fprintf(stdout, "  latency:    mean %.1f µs, p99 %.1f µs\n", st.MeanMicros, st.P99Micros)
		return 0
	}

	j, err := pimtree.NewJoin(pimtree.JoinOptions{
		WindowR: *w, WindowS: *ws, Self: *self, Diff: diff, Backend: be,
	})
	if err != nil {
		fmt.Fprintln(stderr, "pimjoin:", err)
		return 1
	}
	start := time.Now()
	for _, a := range arrivals {
		j.Push(a.Stream, a.Key)
	}
	elapsed := time.Since(start)
	merges, mergeTime := j.Merges()
	fmt.Fprintf(stdout, "  throughput: %.3f Mtps  (%d tuples in %v)\n",
		float64(*n)/elapsed.Seconds()/1e6, *n, elapsed.Round(time.Millisecond))
	fmt.Fprintf(stdout, "  matches:    %d (%.3f per tuple)\n", j.Matches(), float64(j.Matches())/float64(*n))
	fmt.Fprintf(stdout, "  merges:     %d (%v total)\n", merges, mergeTime.Round(time.Microsecond))
	return 0
}

// runStream is the streaming session: one long-lived engine fed line by line
// from in, matches streamed to out while the session is live, final
// statistics on EOF. This is the zero-batching ingestion path — each line is
// pushed as it is read.
func runStream(cfg pimtree.Config, in io.Reader, out, errw io.Writer, emit bool, statsEvery int) error {
	e, err := pimtree.Open(cfg)
	if err != nil {
		return err
	}
	closed := false
	defer func() {
		// Error paths must still tear the session down: worker goroutines
		// and the emit consumer (unblocked by the pull queue closing)
		// would otherwise outlive the call.
		if !closed {
			e.Close(context.Background())
		}
	}()
	timed := e.Mode() == pimtree.ModeShardedTime

	// Pull side: consume the match iterator concurrently so engine
	// propagation never waits on stdout.
	done := make(chan error, 1)
	if emit {
		matches := e.Matches() // armed before the first push
		go func() {
			bw := bufio.NewWriter(out)
			for m := range matches {
				tag := "R"
				if m.ProbeStream == pimtree.S {
					tag = "S"
				}
				if _, err := fmt.Fprintf(bw, "%s,%d,%d\n", tag, m.ProbeSeq, m.MatchSeq); err != nil {
					done <- err
					return
				}
			}
			done <- bw.Flush()
		}()
	} else {
		close(done)
	}

	sc := bufio.NewScanner(in)
	sc.Buffer(make([]byte, 1<<16), 1<<20)
	lineNo, pushed := 0, 0
	for sc.Scan() {
		if emit {
			// A dead match writer (broken pipe downstream) must stop the
			// ingest loop: nothing consumes the pull queue anymore, so
			// joining an endless input would grow it without bound.
			select {
			case emitErr := <-done:
				if emitErr != nil {
					return fmt.Errorf("match output: %w", emitErr)
				}
			default:
			}
		}
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		s, key, ts, err := parseLine(line, timed)
		if err != nil {
			return fmt.Errorf("stdin line %d: %w", lineNo, err)
		}
		if timed {
			err = e.PushTimed(s, key, ts)
		} else {
			err = e.Push(s, key)
		}
		if err != nil {
			return fmt.Errorf("stdin line %d: %w", lineNo, err)
		}
		pushed++
		if statsEvery > 0 && pushed%statsEvery == 0 {
			fmt.Fprintln(errw, "pimjoin:", statsLine(e))
		}
	}
	if err := sc.Err(); err != nil {
		return fmt.Errorf("stdin read: %w", err)
	}
	closed = true
	st, err := e.Close(context.Background())
	if err != nil {
		return err
	}
	if emitErr := <-done; emitErr != nil {
		return emitErr
	}
	fmt.Fprintf(errw, "pimjoin: mode=%s tuples=%d matches=%d elapsed=%v (%.3f Mtps)\n",
		e.Mode(), st.Tuples, st.Matches, st.Elapsed.Round(time.Millisecond), st.Mtps)
	if st.LateDropped > 0 || st.MaxObservedDisorder > 0 {
		fmt.Fprintf(errw, "pimjoin: late=%d max-disorder=%d\n", st.LateDropped, st.MaxObservedDisorder)
	}
	return nil
}

// parseLine parses one stdin line via the shared trace grammar
// (pimtree.ParseArrival); timed mode additionally requires the ts field.
func parseLine(line string, timed bool) (pimtree.StreamID, uint32, uint64, error) {
	a, hasTS, err := pimtree.ParseArrival(line)
	if err != nil {
		return 0, 0, 0, err
	}
	if timed && !hasTS {
		return 0, 0, 0, fmt.Errorf("timed mode needs `stream,key,ts`, got %q", line)
	}
	return a.Stream, a.Key, a.TS, nil
}

func modeByName(name string) (pimtree.Mode, bool) {
	switch strings.ToLower(name) {
	case "auto", "":
		return pimtree.ModeAuto, true
	case "serial":
		return pimtree.ModeSerial, true
	case "shared":
		return pimtree.ModeShared, true
	case "sharded":
		return pimtree.ModeSharded, true
	case "sharded-time", "shardedtime", "time":
		return pimtree.ModeShardedTime, true
	default:
		return pimtree.ModeAuto, false
	}
}

func sourceFactory(dist string) func(int64) pimtree.KeySource {
	switch strings.ToLower(dist) {
	case "uniform":
		return func(s int64) pimtree.KeySource { return pimtree.UniformSource(s) }
	case "gaussian":
		return func(s int64) pimtree.KeySource { return pimtree.GaussianSource(s, 0.5, 0.125) }
	case "gamma33":
		return func(s int64) pimtree.KeySource { return pimtree.GammaSource(s, 3, 3) }
	case "gamma15":
		return func(s int64) pimtree.KeySource { return pimtree.GammaSource(s, 1, 5) }
	default:
		return nil
	}
}

func backendByName(name string) (pimtree.Backend, bool) {
	switch strings.ToLower(name) {
	case "pim", "pimtree":
		return pimtree.PIMTree, true
	case "im", "imtree":
		return pimtree.IMTree, true
	case "btree", "b+tree", "bplustree":
		return pimtree.BPlusTree, true
	case "bwtree", "bw":
		return pimtree.BwTree, true
	case "bchain":
		return pimtree.BChain, true
	case "ibchain":
		return pimtree.IBChain, true
	default:
		return pimtree.PIMTree, false
	}
}
