package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"pimtree"
	"pimtree/internal/cluster"
	"pimtree/internal/server"
)

func TestRouteFlagValidation(t *testing.T) {
	cases := [][]string{
		{},                // missing -nodes
		{"-nodes", " , "}, // -nodes with only empty entries
		{"-nodes", "x", "-backend", "nope"},
		{"-nodes", "x", "-degrade", "nope"},
		{"-nodes", "x", "-sub-policy", "nope"},
		{"-nodes", "x", "extra-arg"},
		{"-not-a-flag"},
	}
	for _, args := range cases {
		var out, errw bytes.Buffer
		if code := runRoute(context.Background(), args, &out, &errw); code != 2 {
			t.Errorf("runRoute(%v) = %d, want 2 (stderr %q)", args, code, errw.String())
		}
	}
	// A config the cluster tier itself rejects (unreachable node) exits 1,
	// not 2: the flags parsed fine.
	var out, errw bytes.Buffer
	code := runRoute(context.Background(), []string{
		"-nodes", "127.0.0.1:1", "-dial-timeout", "200ms", "-w", "64",
	}, &out, &errw)
	if code != 1 {
		t.Errorf("unreachable node: exit %d, want 1 (stderr %q)", code, errw.String())
	}
}

// TestRouteEndToEnd drives the full cluster tier exactly as the CI smoke job
// does: two real serve nodes, the router in front, a loopback client pushing
// through it, a live node join through the admin endpoint mid-run, and a
// graceful drain of the whole stack. The matches that come back over the
// wire must be multiset-identical to a single direct engine.
func TestRouteEndToEnd(t *testing.T) {
	const (
		w    = 256
		n    = 3000
		seed = 11
	)
	diff := pimtree.DiffForMatchRate(w, 2)
	arr := pimtree.Interleave(seed, pimtree.UniformSource(seed+1), pimtree.UniformSource(seed+2), 0.5, n)

	// Direct single-engine oracle.
	want := directOracle(t, pimtree.Config{
		Mode: pimtree.ModeSharded, WindowR: w, WindowS: w,
		Diff: diff, Backend: pimtree.PIMTree, Shards: 3,
	}, arr)
	if len(want) == 0 {
		t.Fatal("vacuous oracle: no matches")
	}

	// Three serve nodes on ephemeral ports: two initial members plus one
	// spare that joins mid-run.
	nodeCtx, nodeCancel := context.WithCancel(context.Background())
	defer nodeCancel()
	nodeReady := make(chan *server.Server, 3)
	serveReady = func(s *server.Server) { nodeReady <- s }
	defer func() { serveReady = nil }()

	nodeCode := make(chan int, 3)
	nodeAddrs := make([]string, 0, 3)
	for i := 0; i < 3; i++ {
		var errw syncBuffer
		go func() {
			nodeCode <- runServe(nodeCtx, []string{
				"-addr", "127.0.0.1:0", "-w", "64", "-mode", "sharded", "-shards", "2",
			}, io.Discard, &errw)
		}()
		select {
		case s := <-nodeReady:
			nodeAddrs = append(nodeAddrs, s.Addr().String())
		case <-time.After(10 * time.Second):
			t.Fatal("serve node never became ready")
		}
	}
	spare := nodeAddrs[2]

	// The router in front of the first two nodes.
	routeCtx, routeCancel := context.WithCancel(context.Background())
	defer routeCancel()
	type routed struct {
		srv *server.Server
		fe  *cluster.Frontend
	}
	routerReady := make(chan routed, 1)
	routeReady = func(s *server.Server, fe *cluster.Frontend) { routerReady <- routed{s, fe} }
	defer func() { routeReady = nil }()

	var rout, rerr syncBuffer
	routeCode := make(chan int, 1)
	go func() {
		routeCode <- runRoute(routeCtx, []string{
			"-addr", "127.0.0.1:0", "-admin", "127.0.0.1:0",
			"-nodes", nodeAddrs[0] + "," + nodeAddrs[1],
			"-w", fmt.Sprint(w), "-diff", fmt.Sprint(diff), "-backend", "pim",
			"-node-shards", "2", "-batch", "16",
			"-sub-queue", "65536", // hold every match while the client is still pushing
			"-stats-every", "10ms",
		}, &rout, &rerr)
	}()
	var rt routed
	select {
	case rt = <-routerReady:
	case <-time.After(15 * time.Second):
		t.Fatal("router never became ready")
	}

	c, err := server.Dial(rt.srv.Addr().String(), server.DialOptions{Subscribe: true})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.PushBatch(arr[:n/2]); err != nil {
		t.Fatal(err)
	}

	// Live node join mid-run through the admin endpoint, then the rest of
	// the stream: the handoff must not lose or duplicate a single match.
	admin := "http://" + rt.srv.AdminAddr().String()
	body, _ := json.Marshal(map[string]string{"addr": spare})
	resp, err := http.Post(admin+"/cluster/join", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/cluster/join: status %d", resp.StatusCode)
	}
	if err := c.PushBatch(arr[n/2:]); err != nil {
		t.Fatal(err)
	}
	got, err := c.DrainWait()
	if err != nil {
		t.Fatal(err)
	}
	requireSameMatches(t, got, want)

	// The membership map reflects the join.
	resp, err = http.Get(admin + "/cluster")
	if err != nil {
		t.Fatal(err)
	}
	var snap struct {
		Nodes []struct {
			Addr string `json:"addr"`
		} `json:"nodes"`
		Epoch uint64 `json:"epoch"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(snap.Nodes) != 3 || snap.Epoch != 1 {
		t.Fatalf("/cluster after join: %d nodes epoch %d, want 3 nodes epoch 1", len(snap.Nodes), snap.Epoch)
	}

	// Graceful drain: router first, then the nodes it still holds sessions on.
	routeCancel()
	select {
	case got := <-routeCode:
		if got != 0 {
			t.Fatalf("route exit code %d, want 0 (stderr %q)", got, rerr.String())
		}
	case <-time.After(30 * time.Second):
		t.Fatal("route did not exit after the shutdown signal")
	}
	if s := rerr.String(); !strings.Contains(s, "draining") || !strings.Contains(s, fmt.Sprintf("tuples=%d", n)) {
		t.Fatalf("missing drain/final lines on route stderr: %q", s)
	}
	if !strings.Contains(rout.String(), "mode=sharded addr=") || !strings.Contains(rout.String(), "nodes=2") {
		t.Fatalf("missing serving line on route stdout: %q", rout.String())
	}
	nodeCancel()
	for i := 0; i < 3; i++ {
		select {
		case got := <-nodeCode:
			if got != 0 {
				t.Fatalf("serve exit code %d, want 0", got)
			}
		case <-time.After(30 * time.Second):
			t.Fatal("a serve node did not exit after the shutdown signal")
		}
	}
}

// directOracle runs the whole arrival stream through one local engine and
// returns every match. The iterator is armed before the first push — matches
// propagated before arming are dropped by design.
func directOracle(t *testing.T, cfg pimtree.Config, arr []pimtree.Arrival) []pimtree.Match {
	t.Helper()
	e, err := pimtree.Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	seq := e.Matches()
	var ms []pimtree.Match
	done := make(chan struct{})
	go func() {
		defer close(done)
		for m := range seq {
			ms = append(ms, m)
		}
	}()
	if err := e.PushBatch(arr); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Close(context.Background()); err != nil {
		t.Fatal(err)
	}
	<-done
	return ms
}

// requireSameMatches asserts two match streams are the same multiset.
func requireSameMatches(t *testing.T, got, want []pimtree.Match) {
	t.Helper()
	count := func(ms []pimtree.Match) map[pimtree.Match]int {
		m := make(map[pimtree.Match]int, len(ms))
		for _, x := range ms {
			m[x]++
		}
		return m
	}
	gc, wc := count(got), count(want)
	if len(got) != len(want) {
		t.Fatalf("got %d matches, want %d", len(got), len(want))
	}
	for k, n := range wc {
		if gc[k] != n {
			t.Fatalf("match %+v: got %d, want %d", k, gc[k], n)
		}
	}
}
