package main

import (
	"bytes"
	"fmt"
	"strings"
	"testing"

	"pimtree"
)

func TestBackendByName(t *testing.T) {
	cases := map[string]pimtree.Backend{
		"pim": pimtree.PIMTree, "pimtree": pimtree.PIMTree,
		"im": pimtree.IMTree, "imtree": pimtree.IMTree,
		"btree": pimtree.BPlusTree, "B+Tree": pimtree.BPlusTree, "bplustree": pimtree.BPlusTree,
		"bwtree": pimtree.BwTree, "BW": pimtree.BwTree,
		"bchain": pimtree.BChain, "ibchain": pimtree.IBChain,
	}
	for name, want := range cases {
		got, ok := backendByName(name)
		if !ok || got != want {
			t.Fatalf("backendByName(%q) = %v,%v, want %v", name, got, ok, want)
		}
	}
	if _, ok := backendByName("nope"); ok {
		t.Fatal("unknown backend accepted")
	}
}

func TestModeByName(t *testing.T) {
	cases := map[string]pimtree.Mode{
		"auto": pimtree.ModeAuto, "serial": pimtree.ModeSerial,
		"shared": pimtree.ModeShared, "sharded": pimtree.ModeSharded,
		"sharded-time": pimtree.ModeShardedTime, "time": pimtree.ModeShardedTime,
	}
	for name, want := range cases {
		got, ok := modeByName(name)
		if !ok || got != want {
			t.Fatalf("modeByName(%q) = %v,%v, want %v", name, got, ok, want)
		}
	}
	if _, ok := modeByName("nope"); ok {
		t.Fatal("unknown mode accepted")
	}
}

func TestParseLine(t *testing.T) {
	s, key, ts, err := parseLine("S, 42, 99", true)
	if err != nil || s != pimtree.S || key != 42 || ts != 99 {
		t.Fatalf("parseLine = %v %d %d %v", s, key, ts, err)
	}
	if _, _, _, err := parseLine("R,7", true); err == nil {
		t.Fatal("timed mode accepted a line without ts")
	}
	for _, bad := range []string{"R", "X,5", "R,notakey", "R,5,notats"} {
		if _, _, _, err := parseLine(bad, false); err == nil && bad != "R,5,notats" {
			t.Fatalf("parseLine(%q) accepted", bad)
		}
	}
}

// TestRunStream drives the stdin streaming session end to end and checks the
// emitted match lines against the serial oracle.
func TestRunStream(t *testing.T) {
	const w = 64
	arrivals := pimtree.Interleave(3, pimtree.UniformSource(4), pimtree.UniformSource(5), 0.5, 4000)
	diff := pimtree.DiffForMatchRate(w, 2)

	oracle, err := pimtree.NewJoin(pimtree.JoinOptions{WindowR: w, WindowS: w, Diff: diff})
	if err != nil {
		t.Fatal(err)
	}
	for _, a := range arrivals {
		oracle.Push(a.Stream, a.Key)
	}

	var in bytes.Buffer
	if err := pimtree.WriteArrivalsCSV(&in, arrivals); err != nil {
		t.Fatal(err)
	}
	var out, errw bytes.Buffer
	cfg := pimtree.Config{Mode: pimtree.ModeSharded, WindowR: w, WindowS: w, Diff: diff, Shards: 2}
	if err := runStream(cfg, &in, &out, &errw, true, 1000); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(out.String()), "\n")
	if out.Len() == 0 {
		lines = nil
	}
	if uint64(len(lines)) != oracle.Matches() {
		t.Fatalf("emitted %d match lines, oracle has %d", len(lines), oracle.Matches())
	}
	if !strings.Contains(errw.String(), "matches=") {
		t.Fatalf("missing final stats on stderr: %q", errw.String())
	}
	if !strings.Contains(errw.String(), "Mtps") {
		t.Fatalf("missing live stats lines: %q", errw.String())
	}
}

// TestRunStreamTimed covers the sharded-time stdin path with out-of-order
// input within the configured slack.
func TestRunStreamTimed(t *testing.T) {
	sorted := pimtree.TimestampArrivals(6,
		pimtree.Interleave(7, pimtree.UniformSource(8), pimtree.UniformSource(9), 0.5, 2000), 3)
	shuffled := pimtree.ShuffleWithinSlack(10, sorted, 64)
	var in bytes.Buffer
	for _, a := range shuffled {
		tag := "R"
		if a.Stream == pimtree.S {
			tag = "S"
		}
		fmt.Fprintf(&in, "%s,%d,%d\n", tag, a.Key, a.TS)
	}
	var out, errw bytes.Buffer
	cfg := pimtree.Config{
		Mode: pimtree.ModeShardedTime, Span: 1 << 10, MaxLive: 1 << 9,
		Diff: 1 << 8, Shards: 2, Slack: 64, LatePolicy: pimtree.LateDrop,
	}
	if err := runStream(cfg, &in, &out, &errw, false, 0); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(errw.String(), "mode=sharded-time") {
		t.Fatalf("missing final stats: %q", errw.String())
	}
}

func TestSourceFactory(t *testing.T) {
	for _, dist := range []string{"uniform", "gaussian", "gamma33", "gamma15", "UNIFORM"} {
		mk := sourceFactory(dist)
		if mk == nil {
			t.Fatalf("sourceFactory(%q) = nil", dist)
		}
		src := mk(1)
		// Deterministic for a fixed seed.
		if src.Next() != mk(1).Next() {
			t.Fatalf("%s source not deterministic", dist)
		}
	}
	if sourceFactory("nope") != nil {
		t.Fatal("unknown distribution accepted")
	}
}
