package main

import (
	"testing"

	"pimtree"
)

func TestBackendByName(t *testing.T) {
	cases := map[string]pimtree.Backend{
		"pim": pimtree.PIMTree, "pimtree": pimtree.PIMTree,
		"im": pimtree.IMTree, "imtree": pimtree.IMTree,
		"btree": pimtree.BPlusTree, "B+Tree": pimtree.BPlusTree, "bplustree": pimtree.BPlusTree,
		"bwtree": pimtree.BwTree, "BW": pimtree.BwTree,
		"bchain": pimtree.BChain, "ibchain": pimtree.IBChain,
	}
	for name, want := range cases {
		got, ok := backendByName(name)
		if !ok || got != want {
			t.Fatalf("backendByName(%q) = %v,%v, want %v", name, got, ok, want)
		}
	}
	if _, ok := backendByName("nope"); ok {
		t.Fatal("unknown backend accepted")
	}
}

func TestSourceFactory(t *testing.T) {
	for _, dist := range []string{"uniform", "gaussian", "gamma33", "gamma15", "UNIFORM"} {
		mk := sourceFactory(dist)
		if mk == nil {
			t.Fatalf("sourceFactory(%q) = nil", dist)
		}
		src := mk(1)
		// Deterministic for a fixed seed.
		if src.Next() != mk(1).Next() {
			t.Fatalf("%s source not deterministic", dist)
		}
	}
	if sourceFactory("nope") != nil {
		t.Fatal("unknown distribution accepted")
	}
}
