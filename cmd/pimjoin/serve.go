package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"time"

	"pimtree"
	"pimtree/internal/server"
)

// serveReady, when set (tests), observes the started server before the
// command blocks on the shutdown signal.
var serveReady func(s *server.Server)

// runServe is the `pimjoin serve` subcommand: a long-lived engine session
// behind the binary wire protocol (docs/OPERATIONS.md), with an optional
// HTTP admin endpoint and graceful drain on SIGINT/SIGTERM (the ctx). The
// engine-shaping flags are the same names the -stdin streaming mode uses.
func runServe(ctx context.Context, args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("pimjoin serve", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		addr   = fs.String("addr", "127.0.0.1:9040", "TCP listen address of the binary ingest/egress protocol")
		admin  = fs.String("admin", "", "HTTP admin listen address serving /stats, /metrics, /healthz (empty disables)")
		nodeID = fs.String("node-id", "", "node identity in /stats, /healthz, and cluster sessions (default: the listen address)")

		w        = fs.Int("w", 1<<16, "window length (both streams)")
		ws       = fs.Int("ws", 0, "stream-S window length (0 = same as -w)")
		sigma    = fs.Float64("sigma", 2, "target match rate (sets the band width)")
		diffFlag = fs.Uint("diff", 0, "explicit band half-width (overrides -sigma)")
		backend  = fs.String("backend", "pim", "index backend: pim | im | btree | bwtree | bchain | ibchain")
		self     = fs.Bool("self", false, "self-join instead of two-way")
		mode     = fs.String("mode", "auto", "engine mode: auto | serial | shared | sharded | sharded-time")
		threads  = fs.Int("threads", 0, "worker threads for shared mode (0 = GOMAXPROCS)")
		task     = fs.Int("task", 8, "task size for shared mode")
		blocking = fs.Bool("blocking-merge", false, "use blocking merges in shared mode")
		shards   = fs.Int("shards", 0, "shard count for the sharded modes (0 = GOMAXPROCS)")
		adaptive = fs.Bool("adaptive", false, "enable adaptive shard rebalancing (sharded mode)")
		autotune = fs.Bool("autotune", false, "run the feedback controller: shard count and rebalancing adjust live (sharded modes)")
		span     = fs.Uint64("span", 0, "time-window duration for -mode sharded-time")
		maxLive  = fs.Int("maxlive", 0, "live-tuple bound per window for -mode sharded-time")
		slack    = fs.Uint64("slack", 0, "tolerated event-time disorder for -mode sharded-time (enables LateDrop)")

		walDir      = fs.String("wal-dir", "", "durability directory: per-shard WAL + snapshots, recovered at startup (sharded modes; empty disables)")
		walFsync    = fs.Int("wal-fsync-every", 0, "fsync each shard lane after this many records (0 = default 64; 1 = every record)")
		walSnapshot = fs.Int("wal-snapshot-every", 0, "compacting-snapshot cadence in routed tuples (0 = default 65536; negative disables)")

		queue        = fs.Int("queue", 0, "engine in-flight bound (QueueCapacity; 0 = mode default)")
		subQueue     = fs.Int("sub-queue", 0, "per-subscriber match queue capacity (0 = default 1024)")
		subPolicy    = fs.String("sub-policy", "drop", "slow-subscriber policy: drop | block")
		statsEvery   = fs.Duration("stats-every", 0, "print a live stats line to stderr at this interval (e.g. 5s)")
		drainTimeout = fs.Duration("drain-timeout", 30*time.Second, "graceful-shutdown bound after SIGINT/SIGTERM")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() > 0 {
		fmt.Fprintf(stderr, "pimjoin serve: unexpected argument %q\n", fs.Arg(0))
		return 2
	}
	if *ws == 0 {
		*ws = *w
	}
	be, ok := backendByName(*backend)
	if !ok {
		fmt.Fprintf(stderr, "pimjoin serve: unknown backend %q\n", *backend)
		return 2
	}
	m, ok := modeByName(*mode)
	if !ok {
		fmt.Fprintf(stderr, "pimjoin serve: unknown mode %q\n", *mode)
		return 2
	}
	var slow server.SlowPolicy
	switch *subPolicy {
	case "drop":
		slow = server.DropNewest
	case "block":
		slow = server.Block
	default:
		fmt.Fprintf(stderr, "pimjoin serve: unknown -sub-policy %q (drop|block)\n", *subPolicy)
		return 2
	}

	setFlags := map[string]bool{}
	fs.Visit(func(f *flag.Flag) { setFlags[f.Name] = true })
	cfg := pimtree.Config{
		Mode:    m,
		WindowR: *w, WindowS: *ws,
		Self:          *self,
		Diff:          uint32(*diffFlag),
		Backend:       be,
		Threads:       *threads,
		BlockingMerge: *blocking,
		Shards:        *shards,
		Adaptive:      *adaptive,
		AutoTune:      *autotune,
		Span:          *span,
		MaxLive:       *maxLive,
		Slack:         *slack,
		QueueCapacity: *queue,
	}
	if *walDir != "" {
		cfg.Durability = pimtree.Durability{
			Dir:           *walDir,
			FsyncEvery:    *walFsync,
			SnapshotEvery: *walSnapshot,
		}
	}
	// Same -task handling as the -stdin mode: an unset default must not
	// steer ModeAuto toward shared mode.
	if setFlags["task"] || m == pimtree.ModeShared {
		cfg.TaskSize = *task
	}
	if cfg.Diff == 0 {
		cfg.Diff = pimtree.DiffForMatchRate(*w, *sigma)
	}
	if cfg.Slack > 0 {
		cfg.LatePolicy = pimtree.LateDrop
	}

	eng, err := pimtree.Open(cfg)
	if err != nil {
		fmt.Fprintln(stderr, "pimjoin serve:", err)
		return 1
	}
	srv, err := server.New(eng, server.Options{
		Addr:            *addr,
		AdminAddr:       *admin,
		SubscriberQueue: *subQueue,
		Slow:            slow,
		NodeID:          *nodeID,
		Logf: func(format string, a ...any) {
			fmt.Fprintf(stderr, "pimjoin "+format+"\n", a...)
		},
	})
	if err != nil {
		eng.Close(context.Background())
		fmt.Fprintln(stderr, "pimjoin serve:", err)
		return 1
	}
	adminStr := ""
	if srv.AdminAddr() != nil {
		adminStr = " admin=http://" + srv.AdminAddr().String()
	}
	fmt.Fprintf(stdout, "pimjoin serve: mode=%s addr=%s%s\n", eng.Mode(), srv.Addr(), adminStr)
	if serveReady != nil {
		serveReady(srv)
	}

	if *statsEvery > 0 {
		ticker := time.NewTicker(*statsEvery)
		defer ticker.Stop()
		go func() {
			for {
				select {
				case <-ticker.C:
					fmt.Fprintln(stderr, "pimjoin:", statsLine(eng))
				case <-ctx.Done():
					return
				}
			}
		}()
	}

	<-ctx.Done()
	fmt.Fprintln(stderr, "pimjoin serve: signal received, draining")
	sctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	st, err := srv.Shutdown(sctx)
	if err != nil {
		fmt.Fprintln(stderr, "pimjoin serve: shutdown:", err)
		return 1
	}
	fmt.Fprintf(stderr, "pimjoin serve: mode=%s tuples=%d matches=%d elapsed=%v (%.3f Mtps)\n",
		eng.Mode(), st.Tuples, st.Matches, st.Elapsed.Round(time.Millisecond), st.Mtps)
	if st.LateDropped > 0 || st.MaxObservedDisorder > 0 {
		fmt.Fprintf(stderr, "pimjoin serve: late=%d max-disorder=%d\n", st.LateDropped, st.MaxObservedDisorder)
	}
	return 0
}

// statsLine renders one live engine snapshot, including the adaptive
// layer's per-shard observability in the sharded modes — the same line the
// -stdin -stats-every path prints.
func statsLine(e *pimtree.Engine) string {
	st := e.Stats()
	line := fmt.Sprintf("%d tuples, %d matches, %.3f Mtps", st.Tuples, st.Matches, st.Mtps)
	if loads := e.ShardLoads(); loads != nil {
		line += fmt.Sprintf(", imbalance %.2f", st.Imbalance)
		if e.Mode() == pimtree.ModeSharded {
			line += fmt.Sprintf(", rebalances %d (migrated %d)", st.Rebalances, st.MigratedTuples)
		}
		tn := e.Tuning()
		line += fmt.Sprintf(", shards %d", tn.Shards)
		if tn.AutoTune {
			line += fmt.Sprintf(", decisions %d", tn.Decisions)
			if tn.LastDecision != "" {
				line += " (" + tn.LastDecision + ")"
			}
		}
	}
	return line
}
