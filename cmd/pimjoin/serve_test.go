package main

import (
	"bytes"
	"context"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"pimtree"
	"pimtree/internal/server"
)

func TestServeFlagValidation(t *testing.T) {
	cases := [][]string{
		{"-backend", "nope"},
		{"-mode", "nope"},
		{"-sub-policy", "nope"},
		{"extra-arg"},
		{"-not-a-flag"},
	}
	for _, args := range cases {
		var out, errw bytes.Buffer
		if code := runServe(context.Background(), args, &out, &errw); code != 2 {
			t.Errorf("runServe(%v) = %d, want 2 (stderr %q)", args, code, errw.String())
		}
	}
	// A config the engine rejects (not the flag parser) exits 1.
	var out, errw bytes.Buffer
	if code := runServe(context.Background(), []string{"-w", "-5"}, &out, &errw); code != 1 {
		t.Errorf("invalid window: exit %d, want 1 (stderr %q)", code, errw.String())
	}
}

// TestServeEndToEnd drives the subcommand exactly as the CI smoke job does:
// start, connect a loopback client, push, drain, scrape the admin endpoint,
// deliver the shutdown signal (the ctx), and require a graceful exit 0.
func TestServeEndToEnd(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	ready := make(chan *server.Server, 1)
	serveReady = func(s *server.Server) { ready <- s }
	defer func() { serveReady = nil }()

	var out, errw syncBuffer
	code := make(chan int, 1)
	go func() {
		code <- runServe(ctx, []string{
			"-addr", "127.0.0.1:0", "-admin", "127.0.0.1:0",
			"-w", "256", "-mode", "sharded", "-shards", "2",
			"-stats-every", "10ms",
		}, &out, &errw)
	}()
	var srv *server.Server
	select {
	case srv = <-ready:
	case <-time.After(10 * time.Second):
		t.Fatal("server never became ready")
	}

	c, err := server.Dial(srv.Addr().String(), server.DialOptions{Subscribe: true})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	arr := pimtree.Interleave(1, pimtree.UniformSource(2), pimtree.UniformSource(3), 0.5, 3000)
	if err := c.PushBatch(arr); err != nil {
		t.Fatal(err)
	}
	ms, err := c.DrainWait()
	if err != nil {
		t.Fatal(err)
	}
	if len(ms) == 0 {
		t.Fatal("no matches over the wire")
	}

	resp, err := http.Get("http://" + srv.AdminAddr().String() + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.Contains(string(body), "pimtree_engine_tuples_total 3000") {
		t.Fatalf("/metrics missing ingest count:\n%s", body)
	}

	cancel() // the SIGTERM path
	select {
	case got := <-code:
		if got != 0 {
			t.Fatalf("exit code %d, want 0 (stderr %q)", got, errw.String())
		}
	case <-time.After(30 * time.Second):
		t.Fatal("serve did not exit after the shutdown signal")
	}
	if s := errw.String(); !strings.Contains(s, "draining") || !strings.Contains(s, "tuples=3000") {
		t.Fatalf("missing drain/final lines on stderr: %q", s)
	}
	if !strings.Contains(out.String(), "mode=sharded addr=") {
		t.Fatalf("missing serving line on stdout: %q", out.String())
	}
}

// TestStatsLineShardObservability pins the satellite requirement: the
// periodic stats line surfaces per-shard imbalance and rebalance counters.
func TestStatsLineShardObservability(t *testing.T) {
	e, err := pimtree.Open(pimtree.Config{
		Mode: pimtree.ModeSharded, WindowR: 128, WindowS: 128,
		Diff: pimtree.DiffForMatchRate(128, 2), Shards: 2,
		Adaptive: true, Rebalance: pimtree.RebalancePolicy{ForceEvery: 500},
		DiscardMatches: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	arr := pimtree.Interleave(4, pimtree.UniformSource(5), pimtree.UniformSource(6), 0.5, 2000)
	if err := e.PushBatch(arr); err != nil {
		t.Fatal(err)
	}
	if err := e.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}
	line := statsLine(e)
	for _, want := range []string{"tuples", "imbalance", "rebalances", "shards 2"} {
		if !strings.Contains(line, want) {
			t.Errorf("stats line %q missing %q", line, want)
		}
	}
	if strings.Contains(line, "rebalances 0") {
		t.Errorf("forced rebalances not reflected live: %q", line)
	}
	// A live reshape shows up on the next line.
	if err := e.Reconfigure(pimtree.Delta{Shards: 3}); err != nil {
		t.Fatal(err)
	}
	if l := statsLine(e); !strings.Contains(l, "shards 3") {
		t.Errorf("stats line %q missing post-reshape shard count", l)
	}
	if _, err := e.Close(context.Background()); err != nil {
		t.Fatal(err)
	}

	// Serial engines keep the plain line.
	se, err := pimtree.Open(pimtree.Config{
		Mode: pimtree.ModeSerial, WindowR: 64, WindowS: 64, Diff: 1, DiscardMatches: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer se.Close(context.Background())
	if l := statsLine(se); strings.Contains(l, "imbalance") {
		t.Errorf("serial stats line must not report shard imbalance: %q", l)
	}
}

// syncBuffer is a goroutine-safe bytes.Buffer (runServe writes from its
// stats ticker goroutine while the test reads).
type syncBuffer struct {
	mu sync.Mutex
	b  bytes.Buffer
}

func (s *syncBuffer) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.Write(p)
}

func (s *syncBuffer) String() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.String()
}
