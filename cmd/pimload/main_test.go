package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"

	"pimtree/internal/bench"
)

func runCmd(t *testing.T, args ...string) (int, string, string) {
	t.Helper()
	var out, errb bytes.Buffer
	code := run(args, &out, &errb)
	return code, out.String(), errb.String()
}

func loadReport(t *testing.T, path string) *bench.Report {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var rep bench.Report
	if err := json.Unmarshal(data, &rep); err != nil {
		t.Fatal(err)
	}
	return &rep
}

func TestRunScenarioLoopback(t *testing.T) {
	path := filepath.Join(t.TempDir(), "load.json")
	code, out, errb := runCmd(t,
		"-loopback", "-scenario", "constant", "-rate", "3000", "-duration", "300ms",
		"-w", "256", "-min-samples", "1", "-json", path)
	if code != 0 {
		t.Fatalf("exit %d\nstdout:\n%s\nstderr:\n%s", code, out, errb)
	}
	if !strings.Contains(out, "scenario constant") {
		t.Fatalf("summary missing from stdout:\n%s", out)
	}

	rep := loadReport(t, path)
	if rep.Scale != "load" {
		t.Fatalf("report scale %q", rep.Scale)
	}
	if len(rep.Experiments) != 1 || rep.Experiments[0].ID != "load-constant" {
		t.Fatalf("want one load-constant experiment, got %+v", rep.Experiments)
	}
	tbl := rep.Experiments[0].Table
	if len(tbl.Rows) != 1 || len(tbl.Rows[0]) != len(tbl.Columns) {
		t.Fatalf("ragged table %+v", tbl)
	}
	// Every latency quantile cell must parse positive — benchgate drops
	// non-positive cells and would fail its coverage check.
	for i, col := range tbl.Columns {
		if !strings.Contains(col, "ms") {
			continue
		}
		v, err := strconv.ParseFloat(tbl.Rows[0][i], 64)
		if err != nil || v <= 0 {
			t.Fatalf("column %q cell %q: want a positive number (err %v)", col, tbl.Rows[0][i], err)
		}
	}
}

func TestRunScenarioDeterministicSchedule(t *testing.T) {
	// Same seed, same scenario: the scheduled send count is identical run to
	// run (latencies of course are not).
	var sents [2]string
	for i := range sents {
		code, out, errb := runCmd(t,
			"-loopback", "-scenario", "hotspot(spike=3)", "-rate", "2000", "-duration", "250ms",
			"-w", "256", "-seed", "7")
		if code != 0 {
			t.Fatalf("exit %d\nstderr:\n%s", code, errb)
		}
		f := strings.Fields(out)
		for j, w := range f {
			if w == "sent" && j+1 < len(f) {
				sents[i] = f[j+1]
			}
		}
	}
	if sents[0] == "" || sents[0] != sents[1] {
		t.Fatalf("sent counts %q and %q differ for one seed", sents[0], sents[1])
	}
}

func TestRunCapacityLoopback(t *testing.T) {
	path := filepath.Join(t.TempDir(), "cap.json")
	code, out, errb := runCmd(t,
		"-loopback", "-capacity", "-slo", "250ms", "-cap-window", "300ms",
		"-min-rate", "1000", "-max-rate", "4000", "-cap-tol", "0.5", "-w", "256",
		"-json", path)
	if code != 0 {
		t.Fatalf("exit %d\nstdout:\n%s\nstderr:\n%s", code, out, errb)
	}
	if !strings.Contains(out, "capacity:") {
		t.Fatalf("capacity summary missing:\n%s", out)
	}
	rep := loadReport(t, path)
	if len(rep.Experiments) != 1 || rep.Experiments[0].ID != "load-capacity" {
		t.Fatalf("want one load-capacity experiment, got %+v", rep.Experiments)
	}
	row := rep.Experiments[0].Table.Rows[0]
	if v, err := strconv.ParseFloat(row[1], 64); err != nil || v < 1000 {
		t.Fatalf("cap/s cell %q: want ≥ min-rate (err %v)", row[1], err)
	}
}

// -max-p999 turns the tail-latency bound into an exit-code gate: an
// impossible bound fails the run, a generous one passes it — the assertion
// the nightly GOMEMLIMIT load smoke relies on.
func TestRunMaxP999(t *testing.T) {
	args := []string{
		"-loopback", "-scenario", "constant", "-rate", "3000", "-duration", "300ms",
		"-w", "256", "-min-samples", "1",
	}
	code, _, errb := runCmd(t, append(args, "-max-p999", "1ns")...)
	if code != 1 || !strings.Contains(errb, "exceeds -max-p999") {
		t.Fatalf("impossible p999 bound passed (exit %d)\nstderr:\n%s", code, errb)
	}
	if code, _, errb := runCmd(t, append(args, "-max-p999", "1h")...); code != 0 {
		t.Fatalf("generous p999 bound failed (exit %d)\nstderr:\n%s", code, errb)
	}
}

func TestRunUsage(t *testing.T) {
	cases := [][]string{
		{},                                    // neither -addr nor -loopback
		{"-addr", "x:1", "-loopback"},         // both
		{"-loopback", "-scenario", "warp"},    // unknown scenario
		{"-loopback", "-sub-policy", "maybe"}, // unknown policy
		{"-loopback", "-capacity", "-scenario", "constant"}, // capacity excludes -scenario
	}
	for _, args := range cases {
		if code, out, _ := runCmd(t, args...); code != 2 {
			t.Errorf("run(%q) = %d, want usage failure 2\nstdout:\n%s", args, code, out)
		}
	}
}
