// Command pimload is the open-loop load-testing and capacity harness for
// the serving layer (pimjoin serve). Unlike pimbench — a closed-loop
// benchmark that measures engine throughput from inside the process —
// pimload drives the wire protocol as a client against a live server,
// schedules every arrival on a fixed timeline laid out before the run
// (coordinated-omission-safe: server stalls surface as latency, they do not
// slow the offered rate), and measures end-to-end match latency from each
// arrival's *scheduled* send time to its match frame's receive time.
//
// Usage:
//
//	pimload -loopback -scenario 'diurnal(period=10s)' -rate 50000 -duration 30s
//	pimload -addr localhost:7478 -scenario constant -rate 20000 -duration 10s -json load.json
//	pimload -loopback -capacity -slo 20ms
//
// Scenario specs (repeat -scenario to run several in sequence):
//
//	constant | diurnal(period=,amp=) | hotspot(start=,len=,spike=,frac=,width=)
//	| disorder(start=,len=,maxdisorder=) | slowsub(subs=,delay=)
//
// -capacity ignores -scenario and binary-searches the highest constant rate
// whose p99 end-to-end match latency holds the -slo bound.
//
// With -json the run writes a report in the pimbench format (load-* cells),
// so cmd/benchgate gates the latency quantiles (lower-is-better) and rates
// (higher-is-better) against a committed baseline.
//
// The driver must be the server's only ingest producer: match frames are
// resolved to scheduled send times through per-stream sequence numbers the
// driver predicts, and a second producer would desynchronize them.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"pimtree/internal/load"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// stringList collects a repeatable flag.
type stringList []string

func (s *stringList) String() string { return strings.Join(*s, "; ") }
func (s *stringList) Set(v string) error {
	*s = append(*s, v)
	return nil
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("pimload", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var scenarios stringList
	fs.Var(&scenarios, "scenario", "scenario spec, repeatable (default constant); see the command doc")
	var (
		rate       = fs.Float64("rate", 20000, "base offered rate, arrivals/s")
		duration   = fs.Duration("duration", 10*time.Second, "scheduled send window per scenario")
		seed       = fs.Int64("seed", 42, "workload seed (schedules are deterministic in it)")
		addr       = fs.String("addr", "", "address of a running pimjoin serve to drive")
		loopback   = fs.Bool("loopback", false, "drive an in-process engine+server instead of -addr")
		jsonPath   = fs.String("json", "", "write a pimbench-format report to this file")
		minSamples = fs.Uint64("min-samples", 0, "fail unless every scenario records at least this many latency samples with positive quantiles")
		maxP999    = fs.Duration("max-p999", 0, "fail any scenario whose p999 end-to-end match latency exceeds this bound (0 = no bound)")

		window    = fs.Int("w", 1<<14, "loopback count-window length (and MaxLive floor for timed scenarios)")
		shards    = fs.Int("shards", 0, "loopback shard count (0 = GOMAXPROCS)")
		subQueue  = fs.Int("sub-queue", 1<<16, "loopback per-subscriber queue bound")
		subPolicy = fs.String("sub-policy", "block", "loopback slow-subscriber policy: block | drop")
		span      = fs.Duration("span", 250*time.Millisecond, "loopback time-window span for timed scenarios")
		slack     = fs.Duration("slack", 0, "loopback disorder slack (0 = the scenario's maxdisorder)")

		capacity  = fs.Bool("capacity", false, "binary-search max sustainable constant rate under -slo")
		slo       = fs.Duration("slo", 20*time.Millisecond, "p99 end-to-end match latency SLO for -capacity")
		capWindow = fs.Duration("cap-window", 3*time.Second, "send window per capacity trial")
		minRate   = fs.Float64("min-rate", 1000, "capacity search floor, arrivals/s")
		maxRate   = fs.Float64("max-rate", 2e6, "capacity search ceiling, arrivals/s")
		capTol    = fs.Float64("cap-tol", 0.1, "capacity bracket tolerance (relative)")
		capTrials = fs.Int("cap-trials", 16, "capacity trial budget")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if (*addr == "") == !*loopback {
		fmt.Fprintln(stderr, "pimload: pass exactly one of -addr or -loopback")
		return 2
	}
	if *capacity && len(scenarios) > 0 {
		fmt.Fprintln(stderr, "pimload: -capacity runs its own constant-rate trials; drop -scenario")
		return 2
	}
	var dropSlow bool
	switch *subPolicy {
	case "block":
	case "drop":
		dropSlow = true
	default:
		fmt.Fprintf(stderr, "pimload: unknown -sub-policy %q (block|drop)\n", *subPolicy)
		return 2
	}
	if len(scenarios) == 0 {
		scenarios = stringList{"constant"}
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	logf := func(format string, a ...any) { fmt.Fprintf(stderr, format+"\n", a...) }
	lcFor := func() load.LoopbackConfig {
		return load.LoopbackConfig{
			Window:          *window,
			Span:            uint64(*span),
			Slack:           uint64(*slack),
			Shards:          *shards,
			SubscriberQueue: *subQueue,
			DropSlow:        dropSlow,
		}
	}
	ropts := load.RunOptions{Addr: *addr, Logf: logf}

	// One runner per remote server: sequence tags accumulate across every
	// schedule the same engine admits. Loopback runs get a fresh engine and
	// a fresh runner each.
	remote := load.NewRunner()

	runOne := func(sc load.Scenario) (*load.Result, error) {
		runner, opts := remote, ropts
		if *loopback {
			lb, err := load.StartLoopback(sc, lcFor())
			if err != nil {
				return nil, err
			}
			defer func() {
				cctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
				defer cancel()
				if err := lb.Close(cctx); err != nil {
					logf("pimload: loopback close: %v", err)
				}
			}()
			runner, opts = load.NewRunner(), ropts
			opts.Addr = lb.Addr()
		}
		sched, err := sc.GenerateFrom(*seed, runner.SeqBase())
		if err != nil {
			return nil, err
		}
		return runner.Run(ctx, sched, opts)
	}

	var results []*load.Result
	var capRes *load.CapacityResult
	fail := false

	if *capacity {
		copts := load.CapacityOptions{
			SLO:       *slo,
			MinRate:   *minRate,
			MaxRate:   *maxRate,
			Tolerance: *capTol,
			MaxTrials: *capTrials,
			Logf:      logf,
		}
		var err error
		capRes, err = load.FindCapacity(ctx, copts, func(_ context.Context, r float64) (*load.Result, error) {
			return runOne(load.Scenario{Kind: load.Constant, Rate: r, Duration: *capWindow})
		})
		if err != nil {
			fmt.Fprintf(stderr, "pimload: %v\n", err)
			return 1
		}
		if capRes.MaxRate > 0 {
			fmt.Fprintf(stdout, "capacity: %.0f arrivals/s sustain p99 < %v (%d trials)\n",
				capRes.MaxRate, capRes.SLO, len(capRes.Trials))
			fmt.Fprintln(stdout, capRes.AtMax.Result.Text())
		} else {
			fmt.Fprintf(stdout, "capacity: even %.0f arrivals/s misses p99 < %v (%d trials)\n",
				copts.MinRate, capRes.SLO, len(capRes.Trials))
			fail = true
		}
	} else {
		for _, spec := range scenarios {
			sc, err := load.ParseSpec(spec)
			if err != nil {
				fmt.Fprintf(stderr, "pimload: %v\n", err)
				return 2
			}
			sc.Rate, sc.Duration = *rate, *duration
			res, err := runOne(sc)
			if err != nil {
				fmt.Fprintf(stderr, "pimload: scenario %s: %v\n", spec, err)
				return 1
			}
			fmt.Fprintln(stdout, res.Text())
			results = append(results, res)
			if res.Errors != 0 || res.Untagged != 0 {
				fmt.Fprintf(stderr, "pimload: scenario %s: %d protocol errors, %d untagged matches\n",
					spec, res.Errors, res.Untagged)
				fail = true
			}
			if *minSamples > 0 {
				if n := res.Latency.Count(); n < *minSamples {
					fmt.Fprintf(stderr, "pimload: scenario %s: %d latency samples, want at least %d\n", spec, n, *minSamples)
					fail = true
				} else if res.Latency.Quantile(0.50) <= 0 || res.Latency.Quantile(0.99) <= 0 || res.Latency.Quantile(0.999) <= 0 {
					fmt.Fprintf(stderr, "pimload: scenario %s: non-positive latency quantile\n", spec)
					fail = true
				}
			}
			if *maxP999 > 0 {
				if p := time.Duration(res.Latency.Quantile(0.999)); p > *maxP999 {
					fmt.Fprintf(stderr, "pimload: scenario %s: p999 %v exceeds -max-p999 %v\n",
						spec, p.Round(time.Microsecond), *maxP999)
					fail = true
				}
			}
		}
	}

	if *jsonPath != "" {
		rep := load.BenchReport(*seed, results, capRes)
		data, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			fmt.Fprintf(stderr, "pimload: encode report: %v\n", err)
			return 1
		}
		if err := os.WriteFile(*jsonPath, append(data, '\n'), 0o644); err != nil {
			fmt.Fprintf(stderr, "pimload: %v\n", err)
			return 1
		}
		fmt.Fprintf(stdout, "wrote %s\n", *jsonPath)
	}
	if fail {
		return 1
	}
	return 0
}
