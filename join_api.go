package pimtree

import (
	"context"
	"time"

	"pimtree/internal/join"
	"pimtree/internal/shard"
	"pimtree/internal/stream"
)

// StreamID names the two input streams of a band join.
type StreamID uint8

// The two streams. Self-joins use R for every tuple.
const (
	R StreamID = StreamID(stream.StreamR)
	S StreamID = StreamID(stream.StreamS)
)

// Backend selects the index structure behind a join.
type Backend int

// Available backends; PIMTree is the paper's contribution, the others are
// its evaluated baselines.
const (
	PIMTree Backend = iota
	IMTree
	BPlusTree
	BwTree
	BChain
	IBChain
)

// String names the backend.
func (b Backend) String() string { return b.kind().String() }

func (b Backend) kind() join.IndexKind {
	switch b {
	case PIMTree:
		return join.IndexPIMTree
	case IMTree:
		return join.IndexIMTree
	case BPlusTree:
		return join.IndexBTree
	case BwTree:
		return join.IndexBwTree
	case BChain:
		return join.IndexChainB
	case IBChain:
		return join.IndexChainIB
	default:
		return join.IndexPIMTree
	}
}

// Match is one join output: the probing tuple and the matched tuple of the
// opposite window, identified by their per-stream sequence numbers.
type Match struct {
	ProbeStream StreamID
	ProbeSeq    uint64
	MatchSeq    uint64
}

// JoinOptions configures an incremental single-threaded band join.
type JoinOptions struct {
	WindowR int  // length of stream R's sliding window (required)
	WindowS int  // length of stream S's window (ignored for self-joins)
	Self    bool // self-join: one stream, one window
	Diff    uint32
	Backend Backend
	// ChainLength is L for the chain backends (default 2).
	ChainLength int
	// Index tunes the two-stage backends.
	Index IndexOptions
	// OnMatch, when set, observes every match in arrival order.
	OnMatch func(Match)
}

// engineConfig translates the historical option struct into the unified
// Config (the single validation and construction point).
func (o JoinOptions) engineConfig() Config {
	return Config{
		Mode:           ModeSerial,
		WindowR:        o.WindowR,
		WindowS:        o.WindowS,
		Self:           o.Self,
		Diff:           o.Diff,
		Backend:        o.Backend,
		ChainLength:    o.ChainLength,
		Index:          o.Index,
		OnMatch:        o.OnMatch,
		DiscardMatches: o.OnMatch == nil,
	}
}

// Join is an incremental band join: push tuples, get matches — a serial-mode
// compatibility wrapper over Engine. Not safe for concurrent use; for
// multicore execution use Open (or RunParallel/RunSharded).
type Join struct {
	e *Engine
}

// NewJoin builds an incremental join operator.
func NewJoin(o JoinOptions) (*Join, error) {
	e, err := Open(o.engineConfig())
	if err != nil {
		return nil, err
	}
	return &Join{e: e}, nil
}

// Push processes one tuple and returns how many matches it produced.
func (j *Join) Push(s StreamID, key uint32) int {
	return j.e.pushSerial(stream.Arrival{Stream: uint8(s), Key: key})
}

// PushR pushes a stream-R tuple.
func (j *Join) PushR(key uint32) int { return j.Push(R, key) }

// PushS pushes a stream-S tuple.
func (j *Join) PushS(key uint32) int { return j.Push(S, key) }

// Matches returns the total number of matches produced so far.
func (j *Join) Matches() uint64 { return j.e.serialMatches.Load() }

// Tuples returns the number of tuples pushed so far.
func (j *Join) Tuples() uint64 { return j.e.tuples.Load() }

// WindowCount returns the number of live tuples in a stream's window.
func (j *Join) WindowCount(s StreamID) int { return j.e.serial.WindowCount(uint8(s)) }

// Merges reports how many index merges ran and their cumulative time.
func (j *Join) Merges() (int, time.Duration) { return j.e.serial.Merges() }

// Arrival is one tuple arrival for the batch drivers and Engine.PushBatch.
// TS is the event timestamp, read only by the time-window modes.
type Arrival struct {
	Stream StreamID
	Key    uint32
	TS     uint64
}

// ParallelOptions configures the multicore shared-index join (Section 4 of
// the paper).
type ParallelOptions struct {
	Threads  int // worker goroutines (default GOMAXPROCS via 0)
	TaskSize int // tuples per task (default 8)
	WindowR  int
	WindowS  int
	Self     bool
	Diff     uint32
	// Backend selects the shared index. The shared-index runtime supports
	// PIMTree (the default) and BwTree; anything else fails with an error
	// wrapping ErrUnsupportedBackend.
	Backend Backend
	// UseBwTree is the historical form of Backend: BwTree. It is honored
	// when Backend is left at its default.
	UseBwTree bool
	// BlockingMerge disables the non-blocking two-phase merge.
	BlockingMerge bool
	// Index tunes the PIM-Tree (merge ratio defaults to 1 in parallel use).
	Index IndexOptions
	// OnMatch observes matches in arrival order (propagation order).
	OnMatch func(Match)
	// RecordLatency enables per-tuple latency sampling.
	RecordLatency bool
}

// RunStats summarizes a parallel run.
type RunStats struct {
	Tuples     int
	Matches    uint64
	Elapsed    time.Duration
	Mtps       float64
	Merges     int
	MergeTime  time.Duration
	MeanMicros float64
	P99Micros  float64
	// Rebalances and MigratedTuples report the adaptive sharded runtime's
	// rebalance epochs and cross-shard window migrations (zero elsewhere).
	Rebalances     int
	MigratedTuples int
	// LateDropped and MaxObservedDisorder report the out-of-order ingestion
	// layer of the time-based runtimes: tuples later than Slack that were
	// not joined, and the largest observed event-time lateness (zero when
	// ingestion ran in strict LateNone mode).
	LateDropped         uint64
	MaxObservedDisorder uint64
	// Imbalance is the sharded modes' load-imbalance ratio,
	// max(shard load)/mean(shard load): 1 is perfectly balanced, the shard
	// count means all load on one shard, 0 means no load yet (or a
	// non-sharded mode). Adaptive runs measure it over ops routed since the
	// last rebalance epoch; static runs over resident window tuples.
	Imbalance float64
	// GC pressure since Open, sourced from runtime/metrics and diffed
	// against the snapshot taken at Open. These are process-wide counters:
	// in an otherwise idle process they measure the session's hot path; a
	// process running several sessions sees their sum in each. The per-tuple
	// ratios are the steady-state allocation rates the zero-allocation hot
	// path drives toward zero.
	AllocObjects   uint64        // heap objects allocated since Open
	AllocBytes     uint64        // heap bytes allocated since Open
	AllocsPerTuple float64       // AllocObjects / Tuples (0 when no tuples)
	BytesPerTuple  float64       // AllocBytes / Tuples (0 when no tuples)
	GCCycles       uint64        // GC cycles completed since Open
	GCPauseTotal   time.Duration // approximate total GC stop-the-world pause since Open
}

// ShardLoad is one shard's live load snapshot, returned by Engine.ShardLoads
// in the sharded modes. Inserts and Probes count ops routed since the last
// rebalance epoch and are populated only when adaptive rebalancing is
// enabled (static runs skip the accounting); QueueDepth and Resident are
// always live.
type ShardLoad struct {
	Inserts    uint64 // tuple inserts routed since the last rebalance epoch
	Probes     uint64 // probe fan-ins routed since the last rebalance epoch
	QueueDepth int    // op batches pending in the shard's queue
	// QueueHW is the monotonic high-water mark of QueueDepth since the
	// shard was (re)created — a reshape that changes the shard count starts
	// fresh marks. Sustained pressure shows up here even when instantaneous
	// depth samples keep missing it.
	QueueHW  uint64
	Resident int // tuples currently stored by the shard (both streams)
}

// runBatch is the shared tail of every batch wrapper: push the whole input
// through an engine sized to it and close.
func runBatch(cfg Config, arrivals []Arrival) (RunStats, error) {
	if cfg.QueueCapacity <= 0 {
		// Size the in-flight ring to the input so the single batch push
		// never blocks — the memory shape of a dedicated batch run.
		cfg.QueueCapacity = len(arrivals)
		if cfg.QueueCapacity == 0 {
			cfg.QueueCapacity = 1
		}
	}
	e, err := Open(cfg)
	if err != nil {
		return RunStats{}, err
	}
	if err := e.PushBatch(arrivals); err != nil {
		// Reject without leaking the session (strict-mode disorder).
		e.Close(context.Background())
		return RunStats{}, err
	}
	return e.Close(context.Background())
}

// RunParallel executes the parallel shared-index band join over a batch of
// arrivals and returns its statistics — a compatibility wrapper over Engine
// in ModeShared. Matches are propagated to OnMatch in arrival order.
func RunParallel(arrivals []Arrival, o ParallelOptions) (RunStats, error) {
	be := o.Backend
	if be == PIMTree && o.UseBwTree {
		be = BwTree
	}
	return runBatch(Config{
		Mode:           ModeShared,
		WindowR:        o.WindowR,
		WindowS:        o.WindowS,
		Self:           o.Self,
		Diff:           o.Diff,
		Backend:        be,
		Threads:        o.Threads,
		TaskSize:       o.TaskSize,
		BlockingMerge:  o.BlockingMerge,
		RecordLatency:  o.RecordLatency,
		Index:          o.Index,
		OnMatch:        o.OnMatch,
		DiscardMatches: o.OnMatch == nil,
	}, arrivals)
}

// Partitioner maps join keys to shards for the sharded runtime.
// Implementations must be monotone: each shard owns a contiguous key range
// and ranges are ordered by shard id, so a band probe's interval
// [key-Diff, key+Diff] maps to a contiguous run of shards. RangePartition
// and QuantilePartition construct the two built-in policies; custom
// implementations plug in the same way.
type Partitioner interface {
	// Shards returns the number of shards the partitioner routes to.
	Shards() int
	// ShardOf returns the shard owning key, in [0, Shards()).
	ShardOf(key uint32) int
}

// RangePartition returns a partitioner splitting the uint32 key domain into
// shards equal-width contiguous ranges — the right default for uniform keys.
func RangePartition(shards int) Partitioner {
	if shards <= 0 {
		shards = 1
	}
	return shard.NewRangePartitioner(shards)
}

// QuantilePartition returns a partitioner whose shard boundaries are the
// quantiles of the given key sample, balancing per-shard load under skewed
// key distributions. Heavy skew may collapse duplicate quantiles, so the
// effective shard count (Shards) can be lower than requested.
func QuantilePartition(sample []uint32, shards int) Partitioner {
	if shards <= 0 {
		shards = 1
	}
	return shard.NewQuantilePartitioner(sample, shards)
}

// RebalancePolicy tunes the adaptive shard rebalancer enabled by
// ShardedOptions.Adaptive. The zero value selects defaults sized from the
// run's windows.
type RebalancePolicy struct {
	// MaxRatio is the load-imbalance trigger: a rebalance epoch is
	// requested when max(shard load) / mean(shard load) since the previous
	// epoch reaches this ratio (default 1.5).
	MaxRatio float64
	// MinGap is the minimum number of arrivals between consecutive
	// rebalance epochs, bounding migration overhead (default 8x the larger
	// window).
	MinGap int
	// SampleSize is the length of the recent-key sample the new shard
	// boundaries are computed from (default 4096).
	SampleSize int
	// ForceEvery, when positive, rebalances unconditionally every that
	// many arrivals instead of consulting the load monitor — deterministic,
	// for tests and demos.
	ForceEvery int
}

// ShardedOptions configures the key-range sharded parallel join. The
// embedded JoinOptions carry the windows, band, backend, and index tuning of
// the per-shard join instances; OnMatch observes matches in global arrival
// order. Chained-index backends are not supported in sharded mode.
//
// Which of these knobs can change after Open — and how the AutoTune
// feedback controller drives them — is tabulated in docs/TUNING.md,
// section "Live reconfiguration and the AutoTune controller".
type ShardedOptions struct {
	JoinOptions
	// Shards is the number of key-range shards, each served by its own
	// worker goroutine and single-writer index (default GOMAXPROCS).
	// Ignored when Partitioner is set. On a long-lived Engine this is only
	// the starting count: Engine.Reconfigure (and the AutoTune controller)
	// can change it live.
	Shards int
	// BatchSize is the number of routed operations a shard accumulates
	// before its queue is flushed (default 64). Larger batches amortize
	// queue handoff; smaller batches shorten the ordered-merge delay.
	// Live-tunable through Engine.Reconfigure.
	BatchSize int
	// Partitioner overrides the default equal-width key ranges; use
	// QuantilePartition for skewed key distributions.
	Partitioner Partitioner
	// Adaptive enables online shard rebalancing: per-shard load accounting
	// feeds a monitor that detects imbalance, and each rebalance epoch
	// recomputes boundaries from a sample of recently inserted keys and
	// migrates live window contents between shards. The match multiset is
	// unaffected — rebalancing only changes which shard does the work. The
	// initial Partitioner (or the equal-width default) only seeds the first
	// epoch.
	Adaptive bool
	// Rebalance tunes the adaptive layer; ignored unless Adaptive is set.
	Rebalance RebalancePolicy
}

// RunSharded executes the key-range sharded parallel band join over a batch
// of arrivals — a compatibility wrapper over Engine in ModeSharded: tuples
// are routed to Shards independent single-writer join instances through
// batched per-shard queues, band probes fan out to every shard whose range
// intersects [key-Diff, key+Diff], and an order-preserving merge stage
// re-sequences matches into global arrival order. It produces the identical
// match multiset as the single-threaded Join on the same input.
func RunSharded(arrivals []Arrival, o ShardedOptions) (RunStats, error) {
	return runBatch(Config{
		Mode:           ModeSharded,
		WindowR:        o.WindowR,
		WindowS:        o.WindowS,
		Self:           o.Self,
		Diff:           o.Diff,
		Backend:        o.Backend,
		Index:          o.Index,
		Shards:         o.Shards,
		BatchSize:      o.BatchSize,
		Partitioner:    o.Partitioner,
		Adaptive:       o.Adaptive,
		Rebalance:      o.Rebalance,
		OnMatch:        o.OnMatch,
		DiscardMatches: o.OnMatch == nil,
	}, arrivals)
}
