// Reconfigure conformance: forced mid-stream reshapes must keep every
// backend's match multiset identical to the serial Join in both sharded
// modes, and the error paths must stay pinned to the same texts as
// Config.validate. Meant to run under -race.
package pimtree_test

import (
	"context"
	"errors"
	"strings"
	"sync"
	"testing"
	"time"

	"pimtree"
)

// reshapePoints returns the forced grow/shrink schedule for an n-arrival
// stream: grow at one third, shrink at two thirds.
func reshapePoints(n int) (grow, shrink int) { return n / 3, 2 * n / 3 }

func TestEngineReconfigureConformance(t *testing.T) {
	const w = 256
	n := 6000
	if testing.Short() {
		n = 2500
	}
	diff := pimtree.DiffForMatchRate(w, 2)
	arr := pimtree.Interleave(51, pimtree.UniformSource(52), pimtree.UniformSource(53), 0.5, n)
	want, _ := serialOracle(t, arr, w, diff)

	backends := []pimtree.Backend{pimtree.PIMTree, pimtree.IMTree, pimtree.BPlusTree, pimtree.BwTree}
	if testing.Short() {
		backends = []pimtree.Backend{pimtree.PIMTree, pimtree.BwTree}
	}
	grow, shrink := reshapePoints(n)
	for _, b := range backends {
		t.Run(b.String(), func(t *testing.T) {
			var got []matchKey
			var mu sync.Mutex
			e, err := pimtree.Open(pimtree.Config{
				Mode: pimtree.ModeSharded, Backend: b,
				WindowR: w, WindowS: w, Diff: diff, Shards: 2, BatchSize: 16,
				OnMatch: func(m pimtree.Match) {
					mu.Lock()
					got = append(got, matchKey{m.ProbeStream, m.ProbeSeq, m.MatchSeq})
					mu.Unlock()
				},
			})
			if err != nil {
				t.Fatal(err)
			}
			stop := make(chan struct{})
			var wg sync.WaitGroup
			pollStats(e, stop, &wg)
			for i, a := range arr {
				switch i {
				case grow:
					if err := e.Reconfigure(pimtree.Delta{Shards: 6, BatchSize: 4}); err != nil {
						t.Fatal(err)
					}
				case shrink:
					if err := e.Reconfigure(pimtree.Delta{Shards: 2, QueueCapacity: 4096}); err != nil {
						t.Fatal(err)
					}
					if tu := e.Tuning(); tu.Reconfigures != 2 || tu.Reshapes != 2 {
						t.Fatalf("Tuning counts %+v after two deltas", tu)
					}
				}
				if err := e.Push(a.Stream, a.Key); err != nil {
					t.Fatal(err)
				}
			}
			st, err := e.Close(context.Background())
			close(stop)
			wg.Wait()
			if err != nil {
				t.Fatal(err)
			}
			if st.Tuples != len(arr) {
				t.Fatalf("Tuples = %d, want %d", st.Tuples, len(arr))
			}
			sortedMatches(got)
			if len(got) != len(want) {
				t.Fatalf("match multiset size %d, want %d", len(got), len(want))
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("match %d = %+v, want %+v", i, got[i], want[i])
				}
			}
		})
	}
}

// Sharded-time conformance across a reshape: the timestamp watermark must
// carry into the new shard set, with the reorder buffer's in-flight disorder
// straddling the epoch.
func TestEngineShardedTimeReconfigureConformance(t *testing.T) {
	const (
		span    = 1 << 12
		slack   = 1 << 7
		maxLive = 1 << 11
	)
	n := 6000
	if testing.Short() {
		n = 2500
	}
	diff := uint32(1 << 10)
	sorted := pimtree.TimestampArrivals(61,
		pimtree.Interleave(62, pimtree.UniformSource(63), pimtree.UniformSource(64), 0.5, n), 3)
	shuffled := pimtree.ShuffleWithinSlack(65, sorted, slack)

	var want []matchKey
	oracle, err := pimtree.NewTimeJoin(pimtree.TimeJoinOptions{
		Span: span, Diff: diff, OnMatch: collectMatches(&want),
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, a := range sorted {
		oracle.Push(a.Stream, a.Key, a.TS)
	}
	sortedMatches(want)

	var got []matchKey
	var mu sync.Mutex
	e, err := pimtree.Open(pimtree.Config{
		Mode: pimtree.ModeShardedTime, Span: span, MaxLive: maxLive,
		Diff: diff, Shards: 2, Slack: slack, LatePolicy: pimtree.LateDrop,
		OnMatch: func(m pimtree.Match) {
			mu.Lock()
			got = append(got, matchKey{m.ProbeStream, m.ProbeSeq, m.MatchSeq})
			mu.Unlock()
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	stop := make(chan struct{})
	var wg sync.WaitGroup
	pollStats(e, stop, &wg)
	grow, shrink := reshapePoints(len(shuffled))
	for i, a := range shuffled {
		switch i {
		case grow:
			if err := e.Reconfigure(pimtree.Delta{Shards: 5}); err != nil {
				t.Fatal(err)
			}
		case shrink:
			if err := e.Reconfigure(pimtree.Delta{Shards: 3, BatchSize: 8}); err != nil {
				t.Fatal(err)
			}
		}
		if err := e.PushTimed(a.Stream, a.Key, a.TS); err != nil {
			t.Fatal(err)
		}
	}
	st, err := e.Close(context.Background())
	close(stop)
	wg.Wait()
	if err != nil {
		t.Fatal(err)
	}
	if st.LateDropped != 0 {
		t.Fatalf("reshape made %d buffered tuples late", st.LateDropped)
	}
	sortedMatches(got)
	if len(got) != len(want) {
		t.Fatalf("match multiset size %d, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("match %d = %+v, want %+v", i, got[i], want[i])
		}
	}
}

// TestEngineReconfigureErrors pins the error paths: non-tunable modes,
// negative deltas, validation failures (same text as Open), and ErrClosed.
func TestEngineReconfigureErrors(t *testing.T) {
	const w = 64
	open := func(t *testing.T, cfg pimtree.Config) *pimtree.Engine {
		t.Helper()
		e, err := pimtree.Open(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return e
	}

	t.Run("not tunable", func(t *testing.T) {
		for _, mode := range []pimtree.Mode{pimtree.ModeSerial, pimtree.ModeShared} {
			cfg := pimtree.Config{Mode: mode, WindowR: w, WindowS: w, Threads: 2}
			e := open(t, cfg)
			err := e.Reconfigure(pimtree.Delta{Shards: 4})
			if !errors.Is(err, pimtree.ErrNotTunable) {
				t.Fatalf("%s: err = %v, want ErrNotTunable", mode, err)
			}
			if !strings.Contains(err.Error(), mode.String()) {
				t.Fatalf("%s: error %q does not name the mode", mode, err)
			}
			e.Close(context.Background())
		}
	})

	t.Run("negative delta", func(t *testing.T) {
		e := open(t, pimtree.Config{Mode: pimtree.ModeSharded, WindowR: w, WindowS: w, Shards: 2})
		defer e.Close(context.Background())
		if err := e.Reconfigure(pimtree.Delta{Shards: -1}); err == nil {
			t.Fatal("negative shards delta accepted")
		}
	})

	t.Run("validation text pinned to Open", func(t *testing.T) {
		// A rebalance delta on a timed engine must fail with the identical
		// message Open produces for the same configuration.
		badCfg := pimtree.Config{
			Mode: pimtree.ModeShardedTime, Span: 100, MaxLive: 64, Shards: 2,
			Adaptive: true,
		}
		_, openErr := pimtree.Open(badCfg)
		if openErr == nil {
			t.Fatal("Open accepted adaptive sharded-time")
		}
		e := open(t, pimtree.Config{Mode: pimtree.ModeShardedTime, Span: 100, MaxLive: 64, Shards: 2})
		defer e.Close(context.Background())
		recErr := e.Reconfigure(pimtree.Delta{Rebalance: &pimtree.RebalancePolicy{}})
		if recErr == nil {
			t.Fatal("Reconfigure accepted a rebalance delta on a timed engine")
		}
		if recErr.Error() != openErr.Error() {
			t.Fatalf("Reconfigure error %q, Open error %q — texts must match", recErr, openErr)
		}
	})

	t.Run("zero delta is a no-op", func(t *testing.T) {
		e := open(t, pimtree.Config{Mode: pimtree.ModeSharded, WindowR: w, WindowS: w, Shards: 2})
		defer e.Close(context.Background())
		if err := e.Reconfigure(pimtree.Delta{}); err != nil {
			t.Fatal(err)
		}
		if tu := e.Tuning(); tu.Reconfigures != 0 {
			t.Fatalf("zero delta counted as a reconfiguration: %+v", tu)
		}
	})

	t.Run("closed engine", func(t *testing.T) {
		e := open(t, pimtree.Config{Mode: pimtree.ModeSharded, WindowR: w, WindowS: w, Shards: 2})
		if _, err := e.Close(context.Background()); err != nil {
			t.Fatal(err)
		}
		if err := e.Reconfigure(pimtree.Delta{Shards: 4}); !errors.Is(err, pimtree.ErrClosed) {
			t.Fatalf("err = %v, want ErrClosed", err)
		}
	})
}

// Concurrent Reconfigure calls (admin endpoint + auto-tuner racing) must
// serialize against each other and the producer; the run stays exact.
func TestEngineReconfigureConcurrent(t *testing.T) {
	const w = 128
	diff := pimtree.DiffForMatchRate(w, 2)
	arr := pimtree.Interleave(71, pimtree.UniformSource(72), pimtree.UniformSource(73), 0.5, 4000)
	want, _ := serialOracle(t, arr, w, diff)

	var got []matchKey
	var mu sync.Mutex
	e, err := pimtree.Open(pimtree.Config{
		Mode: pimtree.ModeSharded, WindowR: w, WindowS: w, Diff: diff,
		Shards: 2, BatchSize: 8,
		OnMatch: func(m pimtree.Match) {
			mu.Lock()
			got = append(got, matchKey{m.ProbeStream, m.ProbeSeq, m.MatchSeq})
			mu.Unlock()
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	stop := make(chan struct{})
	var wg sync.WaitGroup
	targets := [][]int{{3, 5, 2}, {4, 2, 6}, {2, 3, 4}}
	for _, seq := range targets {
		wg.Add(1)
		go func(seq []int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				err := e.Reconfigure(pimtree.Delta{Shards: seq[i%len(seq)]})
				if err != nil && !errors.Is(err, pimtree.ErrClosed) {
					panic(err)
				}
				time.Sleep(time.Millisecond)
			}
		}(seq)
	}
	for _, a := range arr {
		if err := e.Push(a.Stream, a.Key); err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	wg.Wait()
	tu := e.Tuning()
	st, err := e.Close(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if st.Tuples != len(arr) {
		t.Fatalf("Tuples = %d, want %d", st.Tuples, len(arr))
	}
	if tu.Reconfigures == 0 {
		t.Fatal("no concurrent Reconfigure ever applied")
	}
	sortedMatches(got)
	if len(got) != len(want) {
		t.Fatalf("match multiset size %d, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("match %d = %+v, want %+v", i, got[i], want[i])
		}
	}
}

// TestEngineAutoTune: under a sustained hotspot the controller must fire at
// least one decision (enabling rebalancing on the skew) without breaking the
// run.
func TestEngineAutoTune(t *testing.T) {
	const w = 256
	diff := pimtree.DiffForMatchRate(w, 2)
	e, err := pimtree.Open(pimtree.Config{
		Mode: pimtree.ModeSharded, WindowR: w, WindowS: w, Diff: diff,
		Shards: 4, AutoTune: true,
		Tune: pimtree.TunePolicy{Interval: 2 * time.Millisecond, Streak: 2, Cooldown: 2},
		// Matches are irrelevant here; keep the hot path lean.
		DiscardMatches: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !e.Tuning().AutoTune {
		t.Fatal("Tuning().AutoTune = false on an autotuned engine")
	}
	// Hotspot: all keys in a narrow static band, so one shard owns nearly
	// everything and imbalance stays high until the controller enables
	// rebalancing.
	const n = 200000
	arr := pimtree.Interleave(81,
		pimtree.StepSkewSource(82, 0.05, n), pimtree.StepSkewSource(83, 0.05, n), 0.5, n)
	deadline := time.Now().Add(10 * time.Second)
	fired := false
	for !fired && time.Now().Before(deadline) {
		for _, a := range arr {
			if err := e.Push(a.Stream, a.Key); err != nil {
				t.Fatal(err)
			}
		}
		fired = e.Tuning().Decisions > 0
	}
	tu := e.Tuning()
	if _, err := e.Close(context.Background()); err != nil {
		t.Fatal(err)
	}
	if tu.Decisions == 0 {
		t.Fatal("auto-tune controller never fired on a sustained hotspot")
	}
	if tu.LastDecision == "" {
		t.Fatal("LastDecision empty after an applied decision")
	}
}
