package pimtree

import "testing"

// TestGoldenEndToEnd pins the complete pipeline — generator, band
// calibration, serial join, parallel join — to exact expected outputs on a
// fixed seed, guarding against silent semantic drift in any layer. If a
// deliberate change alters these numbers, re-derive them with the NLWJ
// oracle before updating.
func TestGoldenEndToEnd(t *testing.T) {
	const (
		n    = 10000
		w    = 256
		seed = 12345
	)
	arr := Interleave(seed, UniformSource(seed+1), UniformSource(seed+2), 0.5, n)

	// The workload itself is pinned.
	if arr[0].Key != 1741871113 || arr[0].Stream != R {
		t.Fatalf("generator drifted: first arrival %+v", arr[0])
	}
	var checksum uint64
	for _, a := range arr {
		checksum = checksum*31 + uint64(a.Key) + uint64(a.Stream)
	}
	const wantChecksum = uint64(14713924932380141590)
	if checksum != wantChecksum {
		t.Fatalf("workload checksum %d, want %d", checksum, wantChecksum)
	}

	diff := DiffForMatchRate(w, 2)
	if diff != 8388607 {
		t.Fatalf("DiffForMatchRate = %d, want 8388607", diff)
	}

	// Serial joins across backends agree on the golden match count
	// (derived from the nested-loop oracle on this fixed workload).
	const wantMatches = uint64(19356)
	for _, b := range []Backend{PIMTree, IMTree, BPlusTree, BwTree} {
		j, err := NewJoin(JoinOptions{WindowR: w, WindowS: w, Diff: diff, Backend: b})
		if err != nil {
			t.Fatal(err)
		}
		for _, a := range arr {
			j.Push(a.Stream, a.Key)
		}
		if j.Matches() != wantMatches {
			t.Fatalf("%v: matches = %d, want %d", b, j.Matches(), wantMatches)
		}
	}

	// The parallel driver reproduces the same count at several thread
	// counts.
	for _, threads := range []int{1, 2, 4} {
		st, err := RunParallel(arr, ParallelOptions{
			Threads: threads, WindowR: w, WindowS: w, Diff: diff,
		})
		if err != nil {
			t.Fatal(err)
		}
		if st.Matches != wantMatches {
			t.Fatalf("parallel threads=%d: matches = %d, want %d", threads, st.Matches, wantMatches)
		}
	}
}
